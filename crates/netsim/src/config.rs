//! Simulation configuration.

use crate::error::SimError;

/// How packets are injected at each terminal.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionKind {
    /// Memoryless Bernoulli injection at the given rate (packets per
    /// cycle per terminal) — the process used throughout the paper.
    Bernoulli {
        /// Injection rate in `[0, 1]`.
        rate: f64,
    },
    /// Bursty on/off injection with the given average rate and mean
    /// burst length in cycles.
    OnOff {
        /// Average injection rate in `[0, 0.5]`.
        rate: f64,
        /// Mean burst length in cycles (>= 1).
        burst_len: f64,
    },
}

impl InjectionKind {
    /// The long-run average injection rate.
    pub fn rate(&self) -> f64 {
        match *self {
            InjectionKind::Bernoulli { rate } => rate,
            InjectionKind::OnOff { rate, .. } => rate,
        }
    }
}

/// How the value of `td` (measured credit round-trip excess) is smoothed.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdEstimator {
    /// Use the latest sample directly, as the paper describes.
    LastSample,
    /// Exponentially weighted moving average with weight `1 / 2^shift`
    /// on new samples — an ablation of the estimator choice.
    Ewma {
        /// EWMA shift; `2` weights new samples by 1/4.
        shift: u8,
    },
}

/// Credit flow-control mode.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditMode {
    /// Conventional credits: returned as soon as a flit leaves the
    /// downstream input buffer.
    Conventional,
    /// The paper's credit round-trip mechanism (Figure 17): per-output
    /// credit timestamp queues measure `tcrt`; returned credits are
    /// delayed by `td(O) − min_o td(o)` (never across global channels),
    /// stiffening backpressure so upstream routers sense remote global
    /// congestion quickly.
    RoundTrip {
        /// Track one of every `sample` credits (1 = every credit). The
        /// paper notes a 1-of-4 sampling CTQ suffices.
        sample: u32,
        /// Smoothing applied to `td` samples.
        estimator: TdEstimator,
    },
}

impl CreditMode {
    /// The round-trip mode with full tracking and last-sample estimation
    /// — the configuration evaluated in the paper's Figure 16.
    pub fn round_trip() -> Self {
        CreditMode::RoundTrip {
            sample: 1,
            estimator: TdEstimator::LastSample,
        }
    }
}

/// Full configuration of a simulation run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Input buffer depth in flits per (port, VC). The paper uses 16 by
    /// default and studies 4–256.
    pub buffer_depth: usize,
    /// Flits per packet. The paper's evaluation uses single-flit packets
    /// to separate routing from flow-control effects.
    pub packet_len: usize,
    /// Injection process run at every terminal.
    pub injection: InjectionKind,
    /// Warm-up cycles before measurement starts.
    pub warmup: u64,
    /// Measurement window length in cycles; packets created during the
    /// window are labelled and tracked to ejection.
    pub measure: u64,
    /// Extra cycles allowed after the window for labelled packets to
    /// drain; if exceeded the run is reported as saturated.
    pub drain_cap: u64,
    /// RNG seed; every run with the same seed and configuration is
    /// bit-identical.
    pub seed: u64,
    /// Credit flow-control mode.
    pub credit_mode: CreditMode,
}

impl SimConfig {
    /// A configuration matching the paper's defaults: 16-flit buffers,
    /// single-flit packets, Bernoulli injection at `rate`, conventional
    /// credits.
    pub fn paper_default(rate: f64) -> Self {
        SimConfig {
            buffer_depth: 16,
            packet_len: 1,
            injection: InjectionKind::Bernoulli { rate },
            warmup: 10_000,
            measure: 10_000,
            drain_cap: 100_000,
            seed: 1,
            credit_mode: CreditMode::Conventional,
        }
    }

    /// Sets the buffer depth (builder style).
    pub fn with_buffer_depth(mut self, depth: usize) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Sets the credit mode (builder style).
    pub fn with_credit_mode(mut self, mode: CreditMode) -> Self {
        self.credit_mode = mode;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), SimError> {
        let invalid = |msg: String| Err(SimError::InvalidConfig(msg));
        if self.buffer_depth == 0 {
            return invalid("buffer depth must be >= 1".into());
        }
        if self.packet_len == 0 {
            return invalid("packet length must be >= 1".into());
        }
        let rate = self.injection.rate();
        if !(0.0..=1.0).contains(&rate) {
            return invalid(format!("injection rate {rate} outside [0, 1]"));
        }
        if self.measure == 0 {
            return invalid("measurement window must be >= 1 cycle".into());
        }
        if let CreditMode::RoundTrip { sample, .. } = self.credit_mode {
            if sample == 0 {
                return invalid("credit sample ratio must be >= 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(SimConfig::paper_default(0.5).validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::paper_default(0.1)
            .with_buffer_depth(256)
            .with_credit_mode(CreditMode::round_trip())
            .with_seed(9);
        assert_eq!(c.buffer_depth, 256);
        assert_eq!(c.seed, 9);
        assert!(matches!(
            c.credit_mode,
            CreditMode::RoundTrip { sample: 1, .. }
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig::paper_default(0.5);
        c.buffer_depth = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::paper_default(1.5);
        assert!(c.validate().is_err());
        c.injection = InjectionKind::Bernoulli { rate: 0.5 };
        c.measure = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::paper_default(0.5);
        c.credit_mode = CreditMode::RoundTrip {
            sample: 0,
            estimator: TdEstimator::LastSample,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn injection_rate_accessor() {
        assert_eq!(InjectionKind::Bernoulli { rate: 0.25 }.rate(), 0.25);
        assert_eq!(
            InjectionKind::OnOff {
                rate: 0.2,
                burst_len: 8.0
            }
            .rate(),
            0.2
        );
    }
}

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;
    use crate::{ChannelClass, ChannelLoad, Connection, PortSpec, RouterSpec, RunStats};

    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

    #[test]
    fn data_types_implement_serde() {
        assert_serde::<SimConfig>();
        assert_serde::<InjectionKind>();
        assert_serde::<CreditMode>();
        assert_serde::<TdEstimator>();
        assert_serde::<RunStats>();
        assert_serde::<ChannelLoad>();
        assert_serde::<PortSpec>();
        assert_serde::<RouterSpec>();
        assert_serde::<Connection>();
        assert_serde::<ChannelClass>();
    }
}
