//! Simulation configuration.

use crate::error::SimError;

/// How packets are injected at each terminal.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum InjectionKind {
    /// Memoryless Bernoulli injection at the given rate (packets per
    /// cycle per terminal) — the process used throughout the paper.
    Bernoulli {
        /// Injection rate in `[0, 1]`.
        rate: f64,
    },
    /// Bursty on/off injection with the given average rate and mean
    /// burst length in cycles.
    OnOff {
        /// Average injection rate in `[0, 0.5]`.
        rate: f64,
        /// Mean burst length in cycles (>= 1).
        burst_len: f64,
    },
    /// Two-state Markov on/off injection with an explicit duty cycle:
    /// the terminal alternates geometric on-bursts of mean length
    /// `burst_len` with geometric off-gaps sized so the on-state holds
    /// `duty` of the time. During a burst it injects at `rate / duty`,
    /// so the long-run average rate is `rate` — the same offered load
    /// as Bernoulli, concentrated into transients that stress the
    /// congestion estimators.
    MarkovOnOff {
        /// Long-run average injection rate; must satisfy `rate <= duty`
        /// so the in-burst rate stays at or below one flit per cycle.
        rate: f64,
        /// Mean burst length in cycles (>= 1).
        burst_len: f64,
        /// Fraction of time spent in the on state, in `(0, 1]`.
        duty: f64,
    },
}

impl InjectionKind {
    /// The long-run average injection rate.
    pub fn rate(&self) -> f64 {
        match *self {
            InjectionKind::Bernoulli { rate } => rate,
            InjectionKind::OnOff { rate, .. } => rate,
            InjectionKind::MarkovOnOff { rate, .. } => rate,
        }
    }
}

/// Telemetry collection knobs. The default disables every optional
/// collector, leaving only the always-on (O(1)-per-packet) latency
/// histogram and estimator scoreboard.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TelemetryConfig {
    /// Channel time-series sampling cadence in cycles across warmup,
    /// measurement, and drain; 0 disables sampling.
    pub sample_every: u64,
    /// Fraction of packets the flit tracer follows, in `[0, 1]`;
    /// 0 disables tracing.
    pub trace_rate: f64,
    /// Tracer packet-selection seed. Independent of the run seed so
    /// tracing the same run twice picks identical packets.
    pub trace_seed: u64,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_every: 0,
            trace_rate: 0.0,
            trace_seed: 0,
        }
    }
}

impl TelemetryConfig {
    /// Whether any optional collector is enabled.
    pub fn any_enabled(&self) -> bool {
        self.sample_every > 0 || self.trace_rate > 0.0
    }
}

/// When a run ends.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Termination {
    /// Classic fixed-window run: warm up, measure a cycle window,
    /// drain the labelled packets. Every pre-workload sweep uses this.
    #[default]
    FixedWindow,
    /// Fixed-work run: end when every closed-loop workload reports all
    /// of its tasks finished and all tracked packets have been
    /// delivered, reporting the completion cycle in
    /// [`crate::RunStats::completion`]. `warmup`/`measure` do not gate
    /// the run; `warmup + measure + drain_cap` still caps it, and a run
    /// that hits the cap is reported undrained with no completion.
    WorkComplete,
}

/// How the value of `td` (measured credit round-trip excess) is smoothed.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TdEstimator {
    /// Use the latest sample directly, as the paper describes.
    LastSample,
    /// Exponentially weighted moving average with weight `1 / 2^shift`
    /// on new samples — an ablation of the estimator choice.
    Ewma {
        /// EWMA shift; `2` weights new samples by 1/4.
        shift: u8,
    },
}

/// Credit flow-control mode.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CreditMode {
    /// Conventional credits: returned as soon as a flit leaves the
    /// downstream input buffer.
    Conventional,
    /// The paper's credit round-trip mechanism (Figure 17): per-output
    /// credit timestamp queues measure `tcrt`; returned credits are
    /// delayed by `td(O) − min_o td(o)` (never across global channels),
    /// stiffening backpressure so upstream routers sense remote global
    /// congestion quickly.
    RoundTrip {
        /// Track one of every `sample` credits (1 = every credit). The
        /// paper notes a 1-of-4 sampling CTQ suffices.
        sample: u32,
        /// Smoothing applied to `td` samples.
        estimator: TdEstimator,
    },
}

impl CreditMode {
    /// The round-trip mode with full tracking and last-sample estimation
    /// — the configuration evaluated in the paper's Figure 16.
    pub fn round_trip() -> Self {
        CreditMode::RoundTrip {
            sample: 1,
            estimator: TdEstimator::LastSample,
        }
    }
}

/// Full configuration of a simulation run.
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Input buffer depth in flits per (port, VC). The paper uses 16 by
    /// default and studies 4–256.
    pub buffer_depth: usize,
    /// Flits per packet. The paper's evaluation uses single-flit packets
    /// to separate routing from flow-control effects.
    pub packet_len: usize,
    /// Injection process run at every terminal.
    pub injection: InjectionKind,
    /// Warm-up cycles before measurement starts.
    pub warmup: u64,
    /// Measurement window length in cycles; packets created during the
    /// window are labelled and tracked to ejection.
    pub measure: u64,
    /// Extra cycles allowed after the window for labelled packets to
    /// drain; if exceeded the run is reported as saturated.
    pub drain_cap: u64,
    /// RNG seed; every run with the same seed and configuration is
    /// bit-identical.
    pub seed: u64,
    /// Credit flow-control mode.
    pub credit_mode: CreditMode,
    /// Telemetry collection knobs (sampling cadence, flit tracer).
    pub telemetry: TelemetryConfig,
    /// Router shards the cycle engine splits this run across: 1 runs
    /// the whole network on the calling thread, `n > 1` partitions the
    /// routers into `n` contiguous shards driven by worker threads, and
    /// 0 picks a shard count automatically from the available hardware
    /// threads (respecting `DFLY_THREADS`). Results are bit-identical
    /// at every shard count; counts beyond the router count are clamped.
    #[cfg_attr(feature = "serde", serde(default = "default_shards"))]
    pub shards: usize,
    /// Million-terminal scale mode: drops the per-network-channel load
    /// counters (the one remaining O(channels) statistics structure), so
    /// [`crate::RunStats::channel_loads`] comes back empty. Everything
    /// else — latencies, throughput, histograms — is unaffected, and
    /// results stay bit-identical to a run with it off.
    #[cfg_attr(feature = "serde", serde(default))]
    pub scale_mode: bool,
    /// When the run ends: after the classic fixed measurement window
    /// (default), or when all closed-loop work completes.
    #[cfg_attr(feature = "serde", serde(default))]
    pub termination: Termination,
    /// Stall-watchdog cadence in cycles; 0 disables the watchdog. When
    /// enabled, every `watchdog_every` cycles the engine checks that the
    /// network made progress (a flit moved or a packet ejected) since
    /// the previous checkpoint; a zero-progress window with packets
    /// still in flight ends the run with
    /// [`SimError::Stalled`](crate::SimError::Stalled) instead of
    /// spinning until the drain cap. The check runs in-band on cycle
    /// boundaries, so reports are bit-identical at any shard count.
    #[cfg_attr(feature = "serde", serde(default))]
    pub watchdog_every: u64,
}

#[cfg(feature = "serde")]
fn default_shards() -> usize {
    1
}

impl SimConfig {
    /// A configuration matching the paper's defaults: 16-flit buffers,
    /// single-flit packets, Bernoulli injection at `rate`, conventional
    /// credits.
    pub fn paper_default(rate: f64) -> Self {
        SimConfig {
            buffer_depth: 16,
            packet_len: 1,
            injection: InjectionKind::Bernoulli { rate },
            warmup: 10_000,
            measure: 10_000,
            drain_cap: 100_000,
            seed: 1,
            credit_mode: CreditMode::Conventional,
            telemetry: TelemetryConfig::default(),
            shards: 1,
            scale_mode: false,
            termination: Termination::FixedWindow,
            watchdog_every: 0,
        }
    }

    /// Sets the buffer depth (builder style).
    pub fn with_buffer_depth(mut self, depth: usize) -> Self {
        self.buffer_depth = depth;
        self
    }

    /// Sets the credit mode (builder style).
    pub fn with_credit_mode(mut self, mode: CreditMode) -> Self {
        self.credit_mode = mode;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the telemetry knobs (builder style).
    pub fn with_telemetry(mut self, telemetry: TelemetryConfig) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Sets the shard count (builder style); 0 = auto.
    pub fn with_shards(mut self, shards: usize) -> Self {
        self.shards = shards;
        self
    }

    /// Enables or disables scale mode (builder style).
    pub fn with_scale_mode(mut self, on: bool) -> Self {
        self.scale_mode = on;
        self
    }

    /// Sets the termination mode (builder style).
    pub fn with_termination(mut self, termination: Termination) -> Self {
        self.termination = termination;
        self
    }

    /// Sets the stall-watchdog cadence (builder style); 0 disables it.
    pub fn with_watchdog(mut self, every: u64) -> Self {
        self.watchdog_every = every;
        self
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] describing the first invalid
    /// field.
    pub fn validate(&self) -> Result<(), SimError> {
        let invalid = |msg: String| Err(SimError::InvalidConfig(msg));
        if self.buffer_depth == 0 {
            return invalid("buffer depth must be >= 1".into());
        }
        if self.packet_len == 0 {
            return invalid("packet length must be >= 1".into());
        }
        let rate = self.injection.rate();
        if !(0.0..=1.0).contains(&rate) {
            return invalid(format!("injection rate {rate} outside [0, 1]"));
        }
        if let InjectionKind::MarkovOnOff {
            rate,
            burst_len,
            duty,
        } = self.injection
        {
            if burst_len.is_nan() || burst_len < 1.0 {
                return invalid(format!("burst length {burst_len} must be >= 1"));
            }
            if !(duty > 0.0 && duty <= 1.0) {
                return invalid(format!("duty cycle {duty} outside (0, 1]"));
            }
            if rate > duty {
                return invalid(format!(
                    "rate {rate} exceeds duty {duty}: in-burst rate would exceed 1"
                ));
            }
            // Mirror `OnOff::with_rate_and_duty`'s feasibility check —
            // the identical floating-point expression — so the engine
            // can construct the process infallibly after validation:
            // the on-transition probability must not exceed 1.
            if duty < 1.0 && (1.0 / burst_len) * duty / (1.0 - duty) > 1.0 {
                return invalid(format!(
                    "duty {duty} unrealisable at burst length {burst_len}: \
                     needs a mean burst of at least {} cycles",
                    duty / (1.0 - duty)
                ));
            }
        }
        if !(0.0..=1.0).contains(&self.telemetry.trace_rate) {
            return invalid(format!(
                "trace rate {} outside [0, 1]",
                self.telemetry.trace_rate
            ));
        }
        if self.measure == 0 {
            return invalid("measurement window must be >= 1 cycle".into());
        }
        if let CreditMode::RoundTrip { sample, .. } = self.credit_mode {
            if sample == 0 {
                return invalid("credit sample ratio must be >= 1".into());
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_valid() {
        assert!(SimConfig::paper_default(0.5).validate().is_ok());
    }

    #[test]
    fn builders_apply() {
        let c = SimConfig::paper_default(0.1)
            .with_buffer_depth(256)
            .with_credit_mode(CreditMode::round_trip())
            .with_seed(9)
            .with_shards(4);
        assert_eq!(c.buffer_depth, 256);
        assert_eq!(c.seed, 9);
        assert_eq!(c.shards, 4);
        assert!(matches!(
            c.credit_mode,
            CreditMode::RoundTrip { sample: 1, .. }
        ));
    }

    #[test]
    fn invalid_configs_rejected() {
        let mut c = SimConfig::paper_default(0.5);
        c.buffer_depth = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::paper_default(1.5);
        assert!(c.validate().is_err());
        c.injection = InjectionKind::Bernoulli { rate: 0.5 };
        c.measure = 0;
        assert!(c.validate().is_err());

        let mut c = SimConfig::paper_default(0.5);
        c.credit_mode = CreditMode::RoundTrip {
            sample: 0,
            estimator: TdEstimator::LastSample,
        };
        assert!(c.validate().is_err());
    }

    #[test]
    fn markov_on_off_validation() {
        let markov = |rate, burst_len, duty| {
            let mut c = SimConfig::paper_default(0.1);
            c.injection = InjectionKind::MarkovOnOff {
                rate,
                burst_len,
                duty,
            };
            c.validate()
        };
        assert!(markov(0.2, 8.0, 0.5).is_ok());
        assert!(markov(0.5, 1.0, 0.5).is_ok());
        assert!(markov(0.2, 0.5, 0.5).is_err(), "burst shorter than 1");
        assert!(markov(0.2, f64::NAN, 0.5).is_err(), "NaN burst length");
        assert!(markov(0.2, 8.0, 0.0).is_err(), "zero duty");
        assert!(markov(0.2, 8.0, 1.5).is_err(), "duty above 1");
        assert!(markov(0.6, 8.0, 0.5).is_err(), "rate above duty");
        assert!(markov(0.45, 2.0, 0.9).is_err(), "unrealisable duty");
        assert!(markov(0.45, 16.0, 0.9).is_ok(), "long bursts realise it");
        assert!(markov(0.3, 8.0, 1.0).is_ok(), "full duty is degenerate-ok");
    }

    #[test]
    fn termination_defaults_to_fixed_window() {
        let c = SimConfig::paper_default(0.1);
        assert_eq!(c.termination, Termination::FixedWindow);
        let c = c.with_termination(Termination::WorkComplete);
        assert_eq!(c.termination, Termination::WorkComplete);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn watchdog_defaults_off() {
        let c = SimConfig::paper_default(0.1);
        assert_eq!(c.watchdog_every, 0);
        let c = c.with_watchdog(512);
        assert_eq!(c.watchdog_every, 512);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn telemetry_validation() {
        let mut c = SimConfig::paper_default(0.1);
        assert!(!c.telemetry.any_enabled(), "telemetry defaults off");
        c.telemetry.trace_rate = 1.5;
        assert!(c.validate().is_err(), "trace rate above 1");
        c.telemetry.trace_rate = 0.5;
        assert!(c.validate().is_ok());
        assert!(c.telemetry.any_enabled());
        let c = SimConfig::paper_default(0.1).with_telemetry(TelemetryConfig {
            sample_every: 64,
            trace_rate: 0.0,
            trace_seed: 0,
        });
        assert!(c.telemetry.any_enabled());
        assert_eq!(c.telemetry.sample_every, 64);
    }

    #[test]
    fn injection_rate_accessor() {
        assert_eq!(InjectionKind::Bernoulli { rate: 0.25 }.rate(), 0.25);
        assert_eq!(
            InjectionKind::OnOff {
                rate: 0.2,
                burst_len: 8.0
            }
            .rate(),
            0.2
        );
        assert_eq!(
            InjectionKind::MarkovOnOff {
                rate: 0.2,
                burst_len: 8.0,
                duty: 0.5
            }
            .rate(),
            0.2
        );
    }
}

#[cfg(all(test, feature = "serde"))]
mod serde_tests {
    use super::*;
    use crate::{ChannelClass, ChannelLoad, Connection, PortSpec, RouterSpec, RunStats};

    fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}

    #[test]
    fn data_types_implement_serde() {
        assert_serde::<SimConfig>();
        assert_serde::<InjectionKind>();
        assert_serde::<TelemetryConfig>();
        assert_serde::<CreditMode>();
        assert_serde::<TdEstimator>();
        assert_serde::<Termination>();
        assert_serde::<RunStats>();
        assert_serde::<ChannelLoad>();
        assert_serde::<PortSpec>();
        assert_serde::<RouterSpec>();
        assert_serde::<Connection>();
        assert_serde::<ChannelClass>();
    }
}
