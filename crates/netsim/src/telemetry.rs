//! Dependency-free telemetry: metrics registry, log-bucketed latency
//! histograms, time-resolved channel traces, a sampling flit tracer,
//! and the estimator-accuracy scoreboard.
//!
//! Everything in this module is plain data with hand-written JSON
//! emission so the artifacts are reproducible byte-for-byte: two runs
//! that produce equal values produce equal JSON, which is what the
//! serial-vs-parallel determinism tests assert. No wall-clock reads,
//! no hashing with ambient state — the flit tracer's packet selection
//! is a pure function of `(trace_seed, packet id)`.
//!
//! Cost model: every collector here is either always-on and O(1) per
//! *rare* event (one histogram insert per ejected packet, one
//! scoreboard update per injected packet) or gated behind a single
//! predictable branch in the per-flit hot path (channel sampling, flit
//! tracing). The Criterion bench `single_run_ugal_l` guards the
//! disabled-mode overhead at under 3%.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::spec::ChannelClass;

/// SplitMix64 finalizer; the tracer's packet-selection hash.
///
/// Identical on every platform and independent of the simulation RNG
/// streams, so turning tracing on cannot perturb a run.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// A histogram over `u64` values with logarithmic (power-of-two)
/// buckets.
///
/// Bucket 0 holds the value 0; bucket `b >= 1` holds values in
/// `[2^(b-1), 2^b)`. Unlike the fixed-width [`crate::Histogram`] it
/// covers the full `u64` range with at most 65 buckets, so there is no
/// overflow bucket and percentile queries never fail on heavy tails.
/// Min, max, count and sum are tracked exactly; percentiles are
/// resolved to the containing bucket's upper edge (clamped to the
/// exact max), giving a relative error of at most 2x — adequate for
/// p50/p95/p99 tail reporting at a fraction of the memory of exact
/// reservoirs, and mergeable across parallel workers.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LogHistogram {
    /// Number of recorded values.
    pub count: u64,
    /// Exact sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket counts, trimmed to the highest non-empty bucket.
    pub buckets: Vec<u64>,
}

/// Index of the log bucket holding `value`.
#[inline]
fn log_bucket(value: u64) -> usize {
    (64 - value.leading_zeros()) as usize
}

/// Inclusive upper edge of log bucket `b`.
#[inline]
fn bucket_upper(b: usize) -> u64 {
    if b == 0 {
        0
    } else {
        (1u64 << (b - 1)).saturating_mul(2).wrapping_sub(1)
    }
}

impl LogHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        if self.count == 0 {
            self.min = value;
            self.max = value;
        } else {
            self.min = self.min.min(value);
            self.max = self.max.max(value);
        }
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        let b = log_bucket(value);
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LogHistogram) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            self.min = other.min;
            self.max = other.max;
        } else {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (dst, src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += *src;
        }
    }

    /// Mean of the recorded values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// The value at quantile `p` in `[0, 1]`, resolved to the upper
    /// edge of its log bucket and clamped to the exact min/max.
    /// `None` when empty.
    pub fn percentile(&self, p: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let rank = ((p.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Some(bucket_upper(b).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// JSON object: exact summary stats plus the non-empty buckets as
    /// `[upper_edge, count]` pairs.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": [",
            self.count, self.sum, self.min, self.max
        );
        let mut first = true;
        for (b, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let _ = write!(out, "[{}, {}]", bucket_upper(b), n);
        }
        out.push_str("]}");
        out
    }
}

/// A mergeable bag of named counters, gauges, and log histograms.
///
/// Each parallel worker owns a private registry; the harness merges
/// them in deterministic (plan) order, so the merged registry — and
/// its JSON — is identical to the serial run's. Names are kept in
/// `BTreeMap`s so iteration (and therefore JSON emission) is sorted
/// and reproducible.
#[derive(Debug, Clone, Default, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MetricsRegistry {
    /// Monotonic event counts.
    pub counters: BTreeMap<String, u64>,
    /// Last-written point-in-time values.
    pub gauges: BTreeMap<String, f64>,
    /// Log-bucketed value distributions.
    pub histograms: BTreeMap<String, LogHistogram>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `by` to the counter `name`, creating it at zero.
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the gauge `name` to `value`.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// The histogram `name`, created empty on first use.
    pub fn histogram_mut(&mut self, name: &str) -> &mut LogHistogram {
        self.histograms.entry(name.to_string()).or_default()
    }

    /// Folds another registry into this one. Counters and histograms
    /// add; gauges take the other registry's value (last write wins,
    /// matching what a serial run would have observed).
    pub fn merge(&mut self, other: &MetricsRegistry) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
        for (k, v) in &other.gauges {
            self.gauges.insert(k.clone(), *v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().merge(v);
        }
    }

    /// JSON object with `counters`, `gauges`, and `histograms`
    /// sections, all sorted by name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", json_escape(k), v);
        }
        out.push_str("}, \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", json_escape(k), fmt_f64(*v));
        }
        out.push_str("}, \"histograms\": {");
        for (i, (k, v)) in self.histograms.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "\"{}\": {}", json_escape(k), v.to_json());
        }
        out.push_str("}}");
        out
    }
}

/// Formats an `f64` as a JSON number (shortest round-trip form; JSON
/// has no NaN/Inf, so those clamp to `null`).
fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `Display` prints integral floats without a decimal point;
        // that is still a valid JSON number, keep it.
        s
    } else {
        "null".to_string()
    }
}

/// Time series of one network channel's queue state.
///
/// Column `i` of every vector corresponds to `TimeSeries::ticks[i]`;
/// `vc_occupancy` is flattened `[tick][vc]` (row-major, `vcs` entries
/// per tick).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ChannelSeries {
    /// Router the sampled output port belongs to.
    pub router: u32,
    /// Port index on that router.
    pub port: u16,
    /// Channel class (local or global) of the port.
    pub class: ChannelClass,
    /// Total output-queue occupancy (flits) at each sample tick.
    pub occupancy: Vec<u16>,
    /// Per-VC output-queue occupancy, flattened `[tick][vc]`.
    pub vc_occupancy: Vec<u16>,
    /// Credits available across all VCs at each sample tick.
    pub credits: Vec<u16>,
    /// Flits transmitted on the channel during each sample interval.
    pub sent: Vec<u32>,
}

impl ChannelSeries {
    /// Largest total occupancy seen at any sample tick.
    pub fn peak_occupancy(&self) -> u16 {
        self.occupancy.iter().copied().max().unwrap_or(0)
    }

    /// Mean link utilization over the sampled intervals: flits sent
    /// per cycle of sampling interval, in `[0, 1]` for a single-flit
    /// channel.
    pub fn mean_utilization(&self, every: u64) -> f64 {
        if self.sent.is_empty() || every == 0 {
            return 0.0;
        }
        let total: u64 = self.sent.iter().map(|&s| u64::from(s)).sum();
        total as f64 / (self.sent.len() as u64 * every) as f64
    }
}

/// Per-channel, per-VC queue state sampled at a fixed cadence across
/// warmup, the measurement window, and drain.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeSeries {
    /// Sampling cadence in cycles.
    pub every: u64,
    /// Number of virtual channels per port (stride of `vc_occupancy`).
    pub vcs: u8,
    /// Cycle number of each sample.
    pub ticks: Vec<u64>,
    /// One series per router-to-router channel, in `(router, port)`
    /// order.
    pub channels: Vec<ChannelSeries>,
}

impl TimeSeries {
    /// JSON object with the cadence, tick vector, and per-channel
    /// columns.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"every\": {}, \"vcs\": {}, \"ticks\": ",
            self.every, self.vcs
        );
        push_u64_array(&mut out, self.ticks.iter().copied());
        out.push_str(", \"channels\": [");
        for (i, ch) in self.channels.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"router\": {}, \"port\": {}, \"class\": \"{:?}\", \"occupancy\": ",
                ch.router, ch.port, ch.class
            );
            push_u64_array(&mut out, ch.occupancy.iter().map(|&v| u64::from(v)));
            out.push_str(", \"vc_occupancy\": ");
            push_u64_array(&mut out, ch.vc_occupancy.iter().map(|&v| u64::from(v)));
            out.push_str(", \"credits\": ");
            push_u64_array(&mut out, ch.credits.iter().map(|&v| u64::from(v)));
            out.push_str(", \"sent\": ");
            push_u64_array(&mut out, ch.sent.iter().map(|&v| u64::from(v)));
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

fn push_u64_array(out: &mut String, values: impl Iterator<Item = u64>) {
    out.push('[');
    for (i, v) in values.enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

/// One event recorded by the flit tracer.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceEvent {
    /// Cycle the event occurred on.
    pub cycle: u64,
    /// Packet id the event belongs to.
    pub packet: u64,
    /// What happened.
    pub kind: TraceEventKind,
}

/// The kind of a [`TraceEvent`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceEventKind {
    /// The packet's head flit entered the network, with the routing
    /// decision taken at injection.
    Inject {
        /// Source terminal.
        src: u32,
        /// Destination terminal.
        dest: u32,
        /// Whether the minimal path was chosen.
        minimal: bool,
        /// The active estimator's reading for the chosen path.
        q_chosen: u64,
        /// The oracle's ground-truth reading for the chosen path.
        oracle: u64,
    },
    /// The head flit crossed a router-to-router channel.
    Hop {
        /// Router the flit departed from.
        router: u32,
        /// Output port used.
        port: u16,
        /// Virtual channel used.
        vc: u8,
    },
    /// The tail flit left the network at the destination terminal.
    Eject {
        /// End-to-end packet latency in cycles.
        latency: u64,
    },
}

/// The completed event log of a traced run.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FlitTrace {
    /// Fraction of packets sampled.
    pub rate: f64,
    /// Selection seed (independent of the run seed).
    pub seed: u64,
    /// Events in simulation order.
    pub events: Vec<TraceEvent>,
}

impl FlitTrace {
    /// Chrome-trace-format JSON (`chrome://tracing`, Perfetto): one
    /// complete "X" event per record, `ts` in cycles, one track per
    /// packet.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [");
        for (i, ev) in self.events.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let (name, args) = match &ev.kind {
                TraceEventKind::Inject {
                    src,
                    dest,
                    minimal,
                    q_chosen,
                    oracle,
                } => (
                    "inject",
                    format!(
                        "{{\"src\": {src}, \"dest\": {dest}, \"minimal\": {minimal}, \
                         \"q_chosen\": {q_chosen}, \"oracle\": {oracle}}}"
                    ),
                ),
                TraceEventKind::Hop { router, port, vc } => (
                    "hop",
                    format!("{{\"router\": {router}, \"port\": {port}, \"vc\": {vc}}}"),
                ),
                TraceEventKind::Eject { latency } => {
                    ("eject", format!("{{\"latency\": {latency}}}"))
                }
            };
            let _ = write!(
                out,
                "{{\"name\": \"{name}\", \"ph\": \"X\", \"ts\": {}, \"dur\": 1, \
                 \"pid\": 0, \"tid\": {}, \"args\": {args}}}",
                ev.cycle, ev.packet
            );
        }
        out.push_str("]}");
        out
    }
}

/// Seeded sampling flit tracer.
///
/// A packet is traced iff `splitmix64(seed ^ packet) <= threshold`,
/// where the threshold encodes the sampling rate — a pure function of
/// the packet id, so serial and parallel runs (and re-runs) select
/// identical packets.
#[derive(Debug, Clone)]
pub struct FlitTracer {
    rate: f64,
    seed: u64,
    threshold: u64,
    events: Vec<TraceEvent>,
}

impl FlitTracer {
    /// A tracer sampling `rate` of packets (clamped to `[0, 1]`) under
    /// the given selection seed.
    pub fn new(rate: f64, seed: u64) -> Self {
        let rate = rate.clamp(0.0, 1.0);
        let threshold = if rate >= 1.0 {
            u64::MAX
        } else {
            (rate * u64::MAX as f64) as u64
        };
        Self {
            rate,
            seed,
            threshold,
            events: Vec::new(),
        }
    }

    /// Whether the given packet is in the traced sample.
    #[inline]
    pub fn selected(&self, packet: u64) -> bool {
        splitmix64(self.seed ^ packet) <= self.threshold
    }

    /// Appends an event (caller has already checked [`selected`]).
    ///
    /// [`selected`]: FlitTracer::selected
    #[inline]
    pub fn push(&mut self, cycle: u64, packet: u64, kind: TraceEventKind) {
        self.events.push(TraceEvent {
            cycle,
            packet,
            kind,
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Finishes the trace, yielding the immutable event log.
    pub fn finish(self) -> FlitTrace {
        FlitTrace {
            rate: self.rate,
            seed: self.seed,
            events: self.events,
        }
    }

    /// The trace so far, without consuming the tracer.
    pub fn snapshot(&self) -> FlitTrace {
        FlitTrace {
            rate: self.rate,
            seed: self.seed,
            events: self.events.clone(),
        }
    }
}

/// Accuracy scoreboard for the active congestion estimator.
///
/// At every adaptive injection decision the simulator records the
/// estimator reading for the *chosen* path next to the oracle's
/// ground-truth occupancy of the same path (read directly from the
/// global network state, exactly like `GlobalOracle`). The resulting
/// error distribution quantifies the paper's UGAL-L vs UGAL-G gap:
/// a perfect estimator has zero error and zero disagreement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EstimatorScoreboard {
    /// Adaptive decisions observed (committed injections).
    pub decisions: u64,
    /// Decisions where an oracle reading was available (fault-masked
    /// shortcuts are not scored).
    pub scored: u64,
    /// Scored decisions where routing under the oracle's readings
    /// would have picked the other path.
    pub oracle_disagreements: u64,
    /// Sum of the estimator readings for chosen paths.
    pub sum_estimate: u64,
    /// Sum of the oracle readings for chosen paths.
    pub sum_oracle: u64,
    /// Distribution of `|estimate - oracle|` per scored decision.
    pub abs_error: LogHistogram,
}

impl EstimatorScoreboard {
    /// An empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one adaptive decision.
    #[inline]
    pub fn record(&mut self, estimate: u64, oracle: u64, disagreed: bool, scored: bool) {
        self.decisions += 1;
        if !scored {
            return;
        }
        self.scored += 1;
        self.sum_estimate = self.sum_estimate.saturating_add(estimate);
        self.sum_oracle = self.sum_oracle.saturating_add(oracle);
        self.abs_error.record(estimate.abs_diff(oracle));
        if disagreed {
            self.oracle_disagreements += 1;
        }
    }

    /// Folds another scoreboard into this one.
    pub fn merge(&mut self, other: &EstimatorScoreboard) {
        self.decisions += other.decisions;
        self.scored += other.scored;
        self.oracle_disagreements += other.oracle_disagreements;
        self.sum_estimate = self.sum_estimate.saturating_add(other.sum_estimate);
        self.sum_oracle = self.sum_oracle.saturating_add(other.sum_oracle);
        self.abs_error.merge(&other.abs_error);
    }

    /// Mean estimator reading over scored decisions.
    pub fn mean_estimate(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.sum_estimate as f64 / self.scored as f64)
    }

    /// Mean oracle reading over scored decisions.
    pub fn mean_oracle(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.sum_oracle as f64 / self.scored as f64)
    }

    /// Mean absolute error over scored decisions.
    pub fn mean_abs_error(&self) -> Option<f64> {
        self.abs_error.mean()
    }

    /// Fraction of scored decisions where the oracle would have routed
    /// differently.
    pub fn disagreement_rate(&self) -> Option<f64> {
        (self.scored > 0).then(|| self.oracle_disagreements as f64 / self.scored as f64)
    }

    /// JSON object with counts, means, and the error distribution.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"decisions\": {}, \"scored\": {}, \"oracle_disagreements\": {}, \
             \"mean_estimate\": {}, \"mean_oracle\": {}, \"mean_abs_error\": {}, \
             \"disagreement_rate\": {}, \"abs_error\": {}}}",
            self.decisions,
            self.scored,
            self.oracle_disagreements,
            opt_f64(self.mean_estimate()),
            opt_f64(self.mean_oracle()),
            opt_f64(self.mean_abs_error()),
            opt_f64(self.disagreement_rate()),
            self.abs_error.to_json()
        );
        out
    }
}

fn opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) => fmt_f64(v),
        None => "null".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_buckets_cover_powers_of_two() {
        assert_eq!(log_bucket(0), 0);
        assert_eq!(log_bucket(1), 1);
        assert_eq!(log_bucket(2), 2);
        assert_eq!(log_bucket(3), 2);
        assert_eq!(log_bucket(4), 3);
        assert_eq!(log_bucket(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(3), 7);
    }

    #[test]
    fn histogram_percentile_edge_cases_never_fabricate() {
        // Empty: nothing to rank, every percentile is None — not a
        // garbage bucket edge.
        let empty = LogHistogram::new();
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(empty.percentile(p), None, "empty p{p}");
        }
        assert_eq!(empty.mean(), None);
        // One sample: every percentile is that exact value — the
        // min/max clamp must override the bucket's upper edge.
        let mut one = LogHistogram::new();
        one.record(300); // bucket upper edge is 511, not 300
        for p in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(one.percentile(p), Some(300), "one-sample p{p}");
        }
        assert_eq!(one.mean(), Some(300.0));
        // Still exact after a merge with an empty histogram.
        let mut merged = LogHistogram::new();
        merged.merge(&one);
        assert_eq!(merged.percentile(0.5), Some(300));
    }

    #[test]
    fn histogram_percentiles_bracket_exact_values() {
        let mut h = LogHistogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        assert_eq!(h.count, 1000);
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1000);
        assert_eq!(h.mean(), Some(500.5));
        let p50 = h.percentile(0.5).unwrap();
        // 500 lives in bucket [256, 511]; upper edge 511.
        assert_eq!(p50, 511);
        let p99 = h.percentile(0.99).unwrap();
        // 990 lives in bucket [512, 1023]; clamped to the exact max.
        assert_eq!(p99, 1000);
        assert_eq!(h.percentile(1.0), Some(1000));
        assert_eq!(h.percentile(0.0), Some(1));
    }

    #[test]
    fn histogram_merge_matches_single_pass() {
        let mut a = LogHistogram::new();
        let mut b = LogHistogram::new();
        let mut whole = LogHistogram::new();
        for v in 0..100u64 {
            if v % 2 == 0 {
                a.record(v * 7);
            } else {
                b.record(v * 7);
            }
            whole.record(v * 7);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.to_json(), whole.to_json());
    }

    #[test]
    fn registry_merge_is_order_insensitive_for_counters() {
        let mut a = MetricsRegistry::new();
        a.inc("runs", 1);
        a.histogram_mut("latency").record(10);
        let mut b = MetricsRegistry::new();
        b.inc("runs", 2);
        b.inc("packets", 5);
        b.histogram_mut("latency").record(20);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab.counters, ba.counters);
        assert_eq!(ab.histograms, ba.histograms);
        assert_eq!(ab.counters["runs"], 3);
        assert_eq!(ab.counters["packets"], 5);
        assert_eq!(ab.histograms["latency"].count, 2);
    }

    #[test]
    fn registry_json_is_sorted_and_stable() {
        let mut r = MetricsRegistry::new();
        r.inc("zeta", 1);
        r.inc("alpha", 2);
        r.set_gauge("speedup", 2.5);
        let json = r.to_json();
        let alpha = json.find("\"alpha\"").unwrap();
        let zeta = json.find("\"zeta\"").unwrap();
        assert!(alpha < zeta, "counters must be emitted in sorted order");
        assert!(json.contains("\"speedup\": 2.5"));
        assert_eq!(json, r.clone().to_json());
    }

    #[test]
    fn tracer_selection_is_a_pure_function_of_seed_and_packet() {
        let t1 = FlitTracer::new(0.25, 7);
        let t2 = FlitTracer::new(0.25, 7);
        let picked: Vec<u64> = (0..4096).filter(|&p| t1.selected(p)).collect();
        let again: Vec<u64> = (0..4096).filter(|&p| t2.selected(p)).collect();
        assert_eq!(picked, again);
        // Rate is roughly honoured.
        let frac = picked.len() as f64 / 4096.0;
        assert!((0.15..0.35).contains(&frac), "sample fraction {frac}");
        // Rate 1.0 selects everything, including the worst-case hash.
        let all = FlitTracer::new(1.0, 7);
        assert!((0..4096).all(|p| all.selected(p)));
    }

    #[test]
    fn chrome_trace_json_is_well_formed() {
        let mut t = FlitTracer::new(1.0, 0);
        t.push(
            5,
            42,
            TraceEventKind::Inject {
                src: 1,
                dest: 2,
                minimal: true,
                q_chosen: 3,
                oracle: 4,
            },
        );
        t.push(
            6,
            42,
            TraceEventKind::Hop {
                router: 9,
                port: 3,
                vc: 1,
            },
        );
        t.push(12, 42, TraceEventKind::Eject { latency: 7 });
        let json = t.finish().to_chrome_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\""));
        assert!(json.contains("\"name\": \"inject\""));
        assert!(json.contains("\"tid\": 42"));
        assert!(json.contains("\"latency\": 7"));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 3);
    }

    #[test]
    fn scoreboard_tracks_errors_and_disagreements() {
        let mut s = EstimatorScoreboard::new();
        s.record(10, 12, false, true);
        s.record(3, 9, true, true);
        s.record(0, 0, false, false); // fault-masked: counted, not scored
        assert_eq!(s.decisions, 3);
        assert_eq!(s.scored, 2);
        assert_eq!(s.oracle_disagreements, 1);
        assert_eq!(s.mean_abs_error(), Some(4.0));
        assert_eq!(s.disagreement_rate(), Some(0.5));

        let mut t = EstimatorScoreboard::new();
        t.record(5, 5, false, true);
        s.merge(&t);
        assert_eq!(s.decisions, 4);
        assert_eq!(s.scored, 3);
        assert_eq!(s.abs_error.count, 3);
    }

    #[test]
    fn json_escape_handles_controls() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
