//! Flits, packets and route descriptors.

/// How a packet is being routed through the network.
///
/// The distinction matters to the UGAL family: the adaptive decision is
/// exactly the choice between these two classes, and the statistics
/// module reports latency separately per class (Figures 11 and 12 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteClass {
    /// Minimal routing (MIN): at most one global channel in a dragonfly.
    Minimal,
    /// Valiant-style non-minimal routing through a random intermediate.
    NonMinimal,
}

/// Per-packet routing state fixed at injection time.
///
/// Packed to 12 bytes: the intermediate tag is stored inline with a
/// `u32::MAX` sentinel instead of an `Option<u32>` (which would cost a
/// separate discriminant word), read back through
/// [`RouteInfo::intermediate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Per-packet salt chosen at injection; routing algorithms use it to
    /// pick deterministically among parallel channels so that the queue
    /// inspected by an adaptive decision is the queue the packet will
    /// actually use.
    pub salt: u32,
    /// Topology-interpreted intermediate tag for non-minimal routes;
    /// `u32::MAX` means none.
    intermediate: u32,
    /// Minimal or non-minimal.
    pub class: RouteClass,
    /// Virtual channel the packet occupies on its injection (terminal)
    /// channel.
    pub injection_vc: u8,
}

impl RouteInfo {
    /// A minimal route using injection VC 0 and salt 0.
    pub fn minimal() -> Self {
        RouteInfo {
            class: RouteClass::Minimal,
            intermediate: u32::MAX,
            injection_vc: 0,
            salt: 0,
        }
    }

    /// A non-minimal route through `intermediate`, using injection VC 0
    /// and salt 0.
    ///
    /// # Panics
    ///
    /// `u32::MAX` is reserved as the "no intermediate" sentinel; no
    /// topology indexes that many groups/routers/dimensions.
    pub fn non_minimal(intermediate: u32) -> Self {
        assert_ne!(intermediate, u32::MAX, "u32::MAX is the none sentinel");
        RouteInfo {
            class: RouteClass::NonMinimal,
            intermediate,
            injection_vc: 0,
            salt: 0,
        }
    }

    /// The intermediate tag for non-minimal routes (the intermediate
    /// *group* for a dragonfly), or `None` for minimal routes.
    pub fn intermediate(&self) -> Option<u32> {
        (self.intermediate != u32::MAX).then_some(self.intermediate)
    }

    /// The same route with a different injection VC.
    pub fn with_injection_vc(mut self, vc: u8) -> Self {
        self.injection_vc = vc;
        self
    }

    /// The same route with a different salt.
    pub fn with_salt(mut self, salt: u32) -> Self {
        self.salt = salt;
        self
    }
}

/// A flow-control unit traversing the network.
///
/// The paper evaluates with single-flit packets (to separate routing from
/// flow control); multi-flit packets are supported, in which case every
/// flit of a packet carries the same identifiers and route and the
/// head/tail flags delimit it.
///
/// Field order is hot-first: everything a per-hop route computation or a
/// switch-allocation pass reads (destination, route descriptor, hop/VC
/// state, flags) sits in the first 32 bytes, ahead of the cold
/// accounting fields (packet id, source, timestamps) that only ejection
/// touches. A regression test pins `size_of::<Flit>() <= 64` so the
/// struct never outgrows a cache line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Destination terminal.
    pub dest: u32,
    /// Source terminal.
    pub src: u32,
    /// Routing state decided at injection.
    pub route: RouteInfo,
    /// Network hops (router-to-router channels) traversed so far.
    pub hops: u16,
    /// Virtual channel the flit occupies on the channel it last
    /// traversed (and hence in the input buffer it sits in).
    pub vc: u8,
    /// First flit of its packet.
    pub is_head: bool,
    /// Last flit of its packet.
    pub is_tail: bool,
    /// Whether the packet belongs to the measurement sample.
    pub labeled: bool,
    /// Application tag from the workload's `MessageIntent`, handed back
    /// in the delivery notification at ejection. Open-loop traffic
    /// carries 0.
    pub tag: u32,
    /// Unique packet id (flits of one packet share it).
    pub packet: u64,
    /// Cycle the packet entered its source queue.
    pub created: u64,
    /// Cycle the flit left the terminal onto the injection channel.
    pub injected: u64,
}

impl Flit {
    /// Total queueing + network latency if ejected at `cycle`.
    pub fn latency_at(&self, cycle: u64) -> u64 {
        cycle - self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_info_constructors() {
        let m = RouteInfo::minimal();
        assert_eq!(m.class, RouteClass::Minimal);
        assert_eq!(m.intermediate(), None);
        let nm = RouteInfo::non_minimal(7).with_injection_vc(2);
        assert_eq!(nm.class, RouteClass::NonMinimal);
        assert_eq!(nm.intermediate(), Some(7));
        assert_eq!(nm.injection_vc, 2);
    }

    #[test]
    fn latency_accounts_from_creation() {
        let f = Flit {
            packet: 1,
            src: 0,
            dest: 1,
            route: RouteInfo::minimal(),
            created: 10,
            injected: 14,
            hops: 0,
            vc: 0,
            is_head: true,
            is_tail: true,
            labeled: false,
            tag: 0,
        };
        assert_eq!(f.latency_at(25), 15);
    }

    #[test]
    fn flit_stays_within_a_cache_line() {
        // The slab arena and every queue in the cycle engine store flits
        // by value; regressions here multiply across millions of
        // in-flight flits at scale.
        assert_eq!(std::mem::size_of::<RouteInfo>(), 12);
        assert!(std::mem::size_of::<Flit>() <= 64);
    }
}
