//! Flits, packets and route descriptors.

/// How a packet is being routed through the network.
///
/// The distinction matters to the UGAL family: the adaptive decision is
/// exactly the choice between these two classes, and the statistics
/// module reports latency separately per class (Figures 11 and 12 of the
/// paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RouteClass {
    /// Minimal routing (MIN): at most one global channel in a dragonfly.
    Minimal,
    /// Valiant-style non-minimal routing through a random intermediate.
    NonMinimal,
}

/// Per-packet routing state fixed at injection time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouteInfo {
    /// Minimal or non-minimal.
    pub class: RouteClass,
    /// Topology-interpreted intermediate tag for non-minimal routes
    /// (the intermediate *group* for a dragonfly).
    pub intermediate: Option<u32>,
    /// Virtual channel the packet occupies on its injection (terminal)
    /// channel.
    pub injection_vc: u8,
    /// Per-packet salt chosen at injection; routing algorithms use it to
    /// pick deterministically among parallel channels so that the queue
    /// inspected by an adaptive decision is the queue the packet will
    /// actually use.
    pub salt: u32,
}

impl RouteInfo {
    /// A minimal route using injection VC 0 and salt 0.
    pub fn minimal() -> Self {
        RouteInfo {
            class: RouteClass::Minimal,
            intermediate: None,
            injection_vc: 0,
            salt: 0,
        }
    }

    /// A non-minimal route through `intermediate`, using injection VC 0
    /// and salt 0.
    pub fn non_minimal(intermediate: u32) -> Self {
        RouteInfo {
            class: RouteClass::NonMinimal,
            intermediate: Some(intermediate),
            injection_vc: 0,
            salt: 0,
        }
    }

    /// The same route with a different injection VC.
    pub fn with_injection_vc(mut self, vc: u8) -> Self {
        self.injection_vc = vc;
        self
    }

    /// The same route with a different salt.
    pub fn with_salt(mut self, salt: u32) -> Self {
        self.salt = salt;
        self
    }
}

/// A flow-control unit traversing the network.
///
/// The paper evaluates with single-flit packets (to separate routing from
/// flow control); multi-flit packets are supported, in which case every
/// flit of a packet carries the same identifiers and route and the
/// head/tail flags delimit it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flit {
    /// Unique packet id (flits of one packet share it).
    pub packet: u64,
    /// Source terminal.
    pub src: u32,
    /// Destination terminal.
    pub dest: u32,
    /// Routing state decided at injection.
    pub route: RouteInfo,
    /// Cycle the packet entered its source queue.
    pub created: u64,
    /// Cycle the flit left the terminal onto the injection channel.
    pub injected: u64,
    /// Network hops (router-to-router channels) traversed so far.
    pub hops: u16,
    /// Virtual channel the flit occupies on the channel it last
    /// traversed (and hence in the input buffer it sits in).
    pub vc: u8,
    /// First flit of its packet.
    pub is_head: bool,
    /// Last flit of its packet.
    pub is_tail: bool,
    /// Whether the packet belongs to the measurement sample.
    pub labeled: bool,
}

impl Flit {
    /// Total queueing + network latency if ejected at `cycle`.
    pub fn latency_at(&self, cycle: u64) -> u64 {
        cycle - self.created
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn route_info_constructors() {
        let m = RouteInfo::minimal();
        assert_eq!(m.class, RouteClass::Minimal);
        assert_eq!(m.intermediate, None);
        let nm = RouteInfo::non_minimal(7).with_injection_vc(2);
        assert_eq!(nm.class, RouteClass::NonMinimal);
        assert_eq!(nm.intermediate, Some(7));
        assert_eq!(nm.injection_vc, 2);
    }

    #[test]
    fn latency_accounts_from_creation() {
        let f = Flit {
            packet: 1,
            src: 0,
            dest: 1,
            route: RouteInfo::minimal(),
            created: 10,
            injected: 14,
            hops: 0,
            vc: 0,
            is_head: true,
            is_tail: true,
            labeled: false,
        };
        assert_eq!(f.latency_at(25), 15);
    }
}
