//! Randomized property tests of the simulation engine on generated
//! line networks: conservation, determinism and latency bounds must
//! hold for any wiring the generator produces.
//!
//! Cases are drawn from a seeded RNG (no external property-testing
//! dependency — the container builds offline), so every run exercises
//! the same deterministic case set; bump `CASES` or the seeds to widen
//! coverage.

use dfly_netsim::{
    ChannelClass, Connection, NetworkSpec, PortSpec, RouterSpec, ShortestPathRouting, SimConfig,
    Simulation,
};
use dfly_traffic::{rng_for, UniformRandom};
use rand::Rng;

/// Builds a line of `n` routers with `terms` terminals on each and the
/// given channel latency.
fn line(n: usize, terms: usize, latency: u32) -> NetworkSpec {
    let mut routers = Vec::new();
    let mut next_terminal = 0u32;
    for r in 0..n {
        let mut ports = Vec::new();
        for _ in 0..terms {
            ports.push(PortSpec {
                conn: Connection::Terminal {
                    terminal: next_terminal,
                },
                latency: 1,
                class: ChannelClass::Terminal,
            });
            next_terminal += 1;
        }
        if r > 0 {
            ports.push(PortSpec {
                conn: Connection::Router {
                    router: (r - 1) as u32,
                    port: (terms + usize::from(r >= 2)) as u32,
                },
                latency,
                class: ChannelClass::Local,
            });
        }
        if r + 1 < n {
            ports.push(PortSpec {
                conn: Connection::Router {
                    router: (r + 1) as u32,
                    port: terms as u32,
                },
                latency,
                class: ChannelClass::Local,
            });
        }
        routers.push(RouterSpec { ports });
    }
    NetworkSpec::validated(routers, 2).expect("line wiring is consistent")
}

const CASES: u64 = 24;

/// Everything injected at light load is delivered, whatever the line
/// length, concentration, latency, buffers or packet length.
#[test]
fn light_load_conserves_packets() {
    for case in 0..CASES {
        let mut g = rng_for(0xE17, case);
        let n = g.gen_range(2usize..6);
        let terms = g.gen_range(1usize..3);
        let latency = g.gen_range(1u32..5);
        let buffers = g.gen_range(2usize..24);
        let packet_len = g.gen_range(1usize..4);
        let seed = g.gen_range(0u64..500);
        let ctx = format!(
            "case {case}: n={n} terms={terms} latency={latency} buffers={buffers} \
             packet_len={packet_len} seed={seed}"
        );

        let spec = line(n, terms, latency);
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(spec.num_terminals());
        let mut cfg = SimConfig::paper_default(0.05);
        cfg.buffer_depth = buffers;
        cfg.packet_len = packet_len;
        cfg.warmup = 100;
        cfg.measure = 600;
        cfg.drain_cap = 30_000;
        cfg.seed = seed;
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run();
        assert!(stats.drained, "{ctx}");
        assert!(stats.latency.count > 0, "{ctx}");
        // Zero-load floor: inject + eject at minimum.
        assert!(stats.latency.min as usize > packet_len, "{ctx}");
        // Ceiling: path length x latency plus generous queueing slack.
        let worst_path = 2 + (n - 1) as u64 * latency as u64;
        assert!(
            stats.latency.max < worst_path * 40 + 200,
            "{ctx}: max {} vs path {}",
            stats.latency.max,
            worst_path
        );
    }
}

/// Same seed, same everything: bit-identical results.
#[test]
fn engine_is_deterministic() {
    for case in 0..CASES {
        let mut g = rng_for(0xDE7, case);
        let seed = g.gen_range(0u64..200);
        let buffers = g.gen_range(2usize..20);

        let spec = line(3, 2, 2);
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(6);
        let run = || {
            let mut cfg = SimConfig::paper_default(0.3);
            cfg.buffer_depth = buffers;
            cfg.warmup = 100;
            cfg.measure = 500;
            cfg.seed = seed;
            Simulation::new(&spec, &routing, &pattern, cfg)
                .unwrap()
                .run()
        };
        assert_eq!(run(), run(), "case {case}: seed={seed} buffers={buffers}");
    }
}

/// Accepted equals offered below saturation, independent of channel
/// latency (credits cover the bandwidth-delay product as long as
/// buffers do).
#[test]
fn throughput_invariant_to_latency() {
    for latency in 1u32..4 {
        let spec = line(3, 2, latency);
        let routing = ShortestPathRouting::new(&spec);
        let pattern = UniformRandom::new(6);
        let mut cfg = SimConfig::paper_default(0.15);
        cfg.warmup = 300;
        cfg.measure = 2_000;
        let stats = Simulation::new(&spec, &routing, &pattern, cfg)
            .unwrap()
            .run();
        assert!(stats.drained, "latency {latency}");
        assert!(
            (stats.accepted_rate - 0.15).abs() < 0.03,
            "latency {latency}: accepted {}",
            stats.accepted_rate
        );
    }
}
