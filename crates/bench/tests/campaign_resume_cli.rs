//! End-to-end exercises of the `campaign_resume` binary's recovery
//! branches that the CI crash/resume job does not reach: a campaign
//! directory with no journal at all, and a store whose advisory
//! `index.json` sidecar has been corrupted. Both must complete with
//! exit code 0 — the journal is the only authority, the index is
//! rebuilt on every open and never read back.

use std::path::{Path, PathBuf};
use std::process::Command;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dfly-resume-cli-{}-{}", std::process::id(), name));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs the binary against `dir` and returns (exit code, stdout).
fn run_resume(dir: &Path) -> (i32, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_campaign_resume"))
        .env("DFLY_CAMPAIGN_DIR", dir)
        .env_remove("DFLY_CAMPAIGN_KILL")
        .output()
        .expect("campaign_resume must spawn");
    (
        out.status.code().expect("campaign_resume must exit"),
        String::from_utf8_lossy(&out.stdout).into_owned(),
    )
}

#[test]
fn missing_journal_runs_the_whole_grid_fresh() {
    let dir = temp_dir("missing-journal");
    // The directory exists but holds no journal: the store must start
    // empty and simulate every cell, not fail the open.
    std::fs::create_dir_all(&dir).unwrap();
    let (code, stdout) = run_resume(&dir);
    assert_eq!(code, 0, "fresh store must succeed: {stdout}");
    assert_eq!(
        stdout.trim(),
        "{\"total\":8,\"hits\":0,\"misses\":8,\"identical\":true,\"entries\":8}"
    );
    assert!(dir.join("journal.jsonl").is_file());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_index_sidecar_is_rebuilt_not_fatal() {
    let dir = temp_dir("corrupt-index");
    let (code, stdout) = run_resume(&dir);
    assert_eq!(code, 0, "populating run must succeed: {stdout}");

    // The index is advisory: garbage there must not fail the rerun or
    // shadow the journal's contents.
    let index = dir.join("index.json");
    assert!(index.is_file(), "open must have written the index sidecar");
    std::fs::write(&index, b"{not json at all").unwrap();

    let (code, stdout) = run_resume(&dir);
    assert_eq!(code, 0, "corrupt index must be advisory: {stdout}");
    assert_eq!(
        stdout.trim(),
        "{\"total\":8,\"hits\":8,\"misses\":0,\"identical\":true,\"entries\":8}"
    );
    let rebuilt = std::fs::read_to_string(&index).unwrap();
    assert!(
        rebuilt.starts_with("{\"format\": "),
        "index must be rebuilt from the journal: {rebuilt}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
