//! Simulator-core performance: cycles/second of the paper's 1K-node
//! network under each routing family member (the kernels behind
//! Figures 8–16).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfly_netsim::CreditMode;
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn engine_cycles(c: &mut Criterion) {
    let sim = DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap());
    let mut group = c.benchmark_group("engine_1k_cycles");
    group.sample_size(10);
    for (choice, traffic, load) in [
        (RoutingChoice::Min, TrafficChoice::Uniform, 0.3),
        (RoutingChoice::Valiant, TrafficChoice::WorstCase, 0.2),
        (RoutingChoice::UgalLVcH, TrafficChoice::WorstCase, 0.2),
        (RoutingChoice::UgalG, TrafficChoice::Uniform, 0.3),
    ] {
        group.bench_with_input(
            BenchmarkId::new(choice.label(), traffic.label()),
            &(choice, traffic, load),
            |b, &(choice, traffic, load)| {
                b.iter(|| {
                    let mut cfg = sim.config(load);
                    cfg.warmup = 50;
                    cfg.measure = 200;
                    cfg.drain_cap = 2_000;
                    sim.run(choice, traffic, cfg)
                });
            },
        );
    }
    group.finish();
}

fn sharded_single_run(c: &mut Criterion) {
    // The sharded cycle engine: one run split across 1, 2 and 4 router
    // shards. The 1-shard variant doubles as the no-overhead reference
    // for the shard machinery.
    let sim = DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap());
    let mut group = c.benchmark_group("single_run_shards");
    group.sample_size(10);
    for shards in [1usize, 2, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(shards),
            &shards,
            |b, &shards| {
                b.iter(|| {
                    let mut cfg = sim.config(0.3);
                    cfg.warmup = 50;
                    cfg.measure = 200;
                    cfg.drain_cap = 2_000;
                    cfg.shards = shards;
                    sim.run(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg)
                });
            },
        );
    }
    group.finish();
}

fn credit_round_trip_overhead(c: &mut Criterion) {
    // The CR mechanism's bookkeeping (CTQ, delayed credits) vs
    // conventional credits at identical load.
    let sim = DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap());
    let mut group = c.benchmark_group("credit_mode");
    group.sample_size(10);
    for (name, mode) in [
        ("conventional", CreditMode::Conventional),
        ("round_trip", CreditMode::round_trip()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut cfg = sim.config(0.2);
                cfg.warmup = 50;
                cfg.measure = 200;
                cfg.drain_cap = 2_000;
                cfg.credit_mode = mode;
                sim.run(RoutingChoice::UgalLVcH, TrafficChoice::WorstCase, cfg)
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    engine_cycles,
    sharded_single_run,
    credit_round_trip_overhead
);
criterion_main!(benches);
