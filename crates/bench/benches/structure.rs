//! Topology-construction and graph-analysis benchmarks (Figures 4, 5
//! and the structural checks behind Table 2 / Figure 18).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfly_topo::{FlattenedButterfly, FoldedClos, Topology, Torus};
use dragonfly::{Dragonfly, DragonflyParams};
use std::hint::black_box;

fn build_dragonfly(c: &mut Criterion) {
    let mut group = c.benchmark_group("build_dragonfly");
    for (name, p, a, h) in [("1k", 4usize, 8usize, 4usize), ("16k", 8, 16, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(p, a, h),
            |b, &(p, a, h)| {
                b.iter(|| {
                    let df = Dragonfly::new(DragonflyParams::new(p, a, h).unwrap());
                    black_box(df.build_spec().num_terminals())
                });
            },
        );
    }
    group.finish();
}

fn graph_analysis(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_analysis");
    group.sample_size(20);
    group.bench_function("dragonfly_1k_diameter", |b| {
        let df = Dragonfly::new(DragonflyParams::new(4, 8, 4).unwrap());
        b.iter(|| black_box(df.diameter()));
    });
    group.bench_function("fb_4k_diameter", |b| {
        let fb = FlattenedButterfly::new(2, 16, 16);
        b.iter(|| black_box(fb.diameter()));
    });
    group.bench_function("torus_512_diameter", |b| {
        let t = Torus::new(3, 8, 1);
        b.iter(|| black_box(t.diameter()));
    });
    group.bench_function("clos_graph_build", |b| {
        let clos = FoldedClos::new(3, 32);
        b.iter(|| black_box(clos.router_graph().edge_count()));
    });
    group.finish();
}

criterion_group!(benches, build_dragonfly, graph_analysis);
criterion_main!(benches);
