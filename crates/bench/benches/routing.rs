//! Route-computation microbenchmarks: the per-flit and per-packet
//! decisions on the routing fast path.

use criterion::{criterion_group, criterion_main, Criterion};
use dfly_netsim::{RouteInfo, SimConfig, Simulation};
use dfly_traffic::{rng_for, UniformRandom};
use dragonfly::{Dragonfly, DragonflyParams, MinimalRouting, UgalRouting, UgalVariant};
use std::hint::black_box;
use std::sync::Arc;

fn route_computation(c: &mut Criterion) {
    // Time full injection decisions by running one cycle bursts through
    // the engine with each algorithm (the engine's inject phase is
    // dominated by the decision).
    let df = Arc::new(Dragonfly::new(DragonflyParams::new(4, 8, 4).unwrap()));
    let spec = df.build_spec();
    let pattern = UniformRandom::new(spec.num_terminals());
    let mut group = c.benchmark_group("routing_inject_cycle");
    group.sample_size(20);

    let min = MinimalRouting::new(df.clone());
    group.bench_function("min_100_cycles", |b| {
        b.iter(|| {
            let mut sim =
                Simulation::new(&spec, &min, &pattern, SimConfig::paper_default(0.5)).unwrap();
            for _ in 0..100 {
                sim.step();
            }
            black_box(sim.cycle())
        });
    });

    let ugal = UgalRouting::new(df.clone(), UgalVariant::LocalVcHybrid);
    group.bench_function("ugal_vch_100_cycles", |b| {
        b.iter(|| {
            let mut sim =
                Simulation::new(&spec, &ugal, &pattern, SimConfig::paper_default(0.5)).unwrap();
            for _ in 0..100 {
                sim.step();
            }
            black_box(sim.cycle())
        });
    });
    group.finish();
}

fn salt_pick(c: &mut Criterion) {
    let df = Dragonfly::new(DragonflyParams::new(4, 8, 4).unwrap());
    let mut rng = rng_for(1, 0);
    use rand::Rng;
    let salts: Vec<u32> = (0..1024).map(|_| rng.gen()).collect();
    c.bench_function("parallel_channel_pick_1k", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &salt in &salts {
                acc ^= df.pick(black_box(7), salt, 1);
            }
            black_box(acc)
        });
    });
    let _ = RouteInfo::minimal();
}

criterion_group!(benches, route_computation, salt_pick);
criterion_main!(benches);
