//! Cost-model benchmarks: the Figure 19 bill-of-materials roll-ups.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfly_cost::CostConfig;
use std::hint::black_box;

fn cost_rollups(c: &mut Criterion) {
    let cfg = CostConfig::default();
    let mut group = c.benchmark_group("figure19_rollup");
    for n in [4096usize, 20480] {
        group.bench_with_input(BenchmarkId::new("dragonfly", n), &n, |b, &n| {
            b.iter(|| black_box(cfg.dragonfly(n).per_node()));
        });
        group.bench_with_input(BenchmarkId::new("flattened_butterfly", n), &n, |b, &n| {
            b.iter(|| black_box(cfg.flattened_butterfly(n).per_node()));
        });
        group.bench_with_input(BenchmarkId::new("folded_clos", n), &n, |b, &n| {
            b.iter(|| black_box(cfg.folded_clos(n).per_node()));
        });
        group.bench_with_input(BenchmarkId::new("torus_3d", n), &n, |b, &n| {
            b.iter(|| black_box(cfg.torus_3d(n).per_node()));
        });
    }
    group.finish();
}

criterion_group!(benches, cost_rollups);
criterion_main!(benches);
