//! Parallel experiment harness: wall time of a fig8-style load sweep
//! executed serially vs fanned across the worker pool, plus the raw
//! single-run hot path it is built from.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dfly_netsim::TelemetryConfig;
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, RunGrid, TrafficChoice};

/// The grid behind a Figure 8 panel: every routing family member over
/// an ascending uniform-random load sweep.
fn fig8_grid(sim: &DragonflySim) -> RunGrid {
    let choices = [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalL,
        RoutingChoice::UgalG,
    ];
    let loads = [0.1, 0.2, 0.3, 0.4];
    let mut base = sim.config(0.1);
    base.warmup = 50;
    base.measure = 200;
    base.drain_cap = 2_000;
    RunGrid::cross(&choices, &[TrafficChoice::Uniform], &loads, &base)
}

fn sweep_fanout(c: &mut Criterion) {
    let sim = DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap());
    let mut group = c.benchmark_group("parallel_sweep_fig8");
    group.sample_size(10);
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut threads = vec![1usize];
    for t in [2, 4, hw] {
        if t > *threads.last().unwrap() {
            threads.push(t);
        }
    }
    for t in threads {
        group.bench_with_input(BenchmarkId::new("threads", t), &t, |b, &t| {
            b.iter(|| fig8_grid(&sim).execute_on(&sim, t));
        });
    }
    group.finish();
}

fn single_run_hot_path(c: &mut Criterion) {
    // The per-run engine the harness fans out: one UGAL-L run at
    // moderate uniform load (dominated by phases 2-4 of the cycle
    // loop). Telemetry is disabled (the default); the companion
    // benchmark below bounds what enabling it costs — the gap between
    // this one and its pre-telemetry baseline is the disabled-path
    // overhead budget (< 3%).
    let sim = DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap());
    c.bench_function("single_run_ugal_l", |b| {
        b.iter(|| {
            let mut cfg = sim.config(0.3);
            cfg.warmup = 50;
            cfg.measure = 200;
            cfg.drain_cap = 2_000;
            sim.run(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg)
        });
    });
}

fn single_run_telemetry(c: &mut Criterion) {
    // The same run with channel sampling and the seeded flit tracer
    // switched on at the cadence perfstat benchmarks.
    let sim = DragonflySim::new(DragonflyParams::new(4, 8, 4).unwrap());
    c.bench_function("single_run_ugal_l_telemetry", |b| {
        b.iter(|| {
            let mut cfg = sim.config(0.3);
            cfg.warmup = 50;
            cfg.measure = 200;
            cfg.drain_cap = 2_000;
            cfg.telemetry = TelemetryConfig {
                sample_every: 256,
                trace_rate: 0.01,
                trace_seed: 7,
            };
            sim.run(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg)
        });
    });
}

criterion_group!(
    benches,
    sweep_fanout,
    single_run_hot_path,
    single_run_telemetry
);
criterion_main!(benches);
