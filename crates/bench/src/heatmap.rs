//! Channel × time occupancy heatmaps from the telemetry layer's
//! sampled [`TimeSeries`], exportable as JSON and as a gnuplot
//! `matrix with image` data file.
//!
//! The simulator's channel sampling (see
//! `SimConfig::telemetry.sample_every`) records each channel's queue
//! occupancy at fixed cycle ticks. A [`Heatmap`] reshapes that into a
//! dense matrix — one row per channel, peak-ranked so hotspots sit at
//! the top, one column per tick — which is the natural input for an
//! occupancy-over-time picture of a run (e.g. how congestion pools on
//! the surviving global cables as a fault sweep kills the others).

use std::fmt::Write as _;

use dfly_netsim::TimeSeries;

/// One heatmap row: a channel's identity and its occupancy samples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeatmapRow {
    /// Router the channel leaves.
    pub router: u32,
    /// Output port on that router.
    pub port: u16,
    /// Channel class, rendered (`Local` / `Global` / ...).
    pub class: String,
    /// Occupancy at each sample tick, in flits.
    pub occupancy: Vec<u16>,
}

impl HeatmapRow {
    /// Largest occupancy sample of the row.
    pub fn peak(&self) -> u16 {
        self.occupancy.iter().copied().max().unwrap_or(0)
    }
}

/// A channel × time occupancy matrix, rows ranked by peak occupancy
/// (ties broken by router then port, so the ranking is deterministic).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Heatmap {
    /// Sampling period in cycles.
    pub every: u64,
    /// Sample tick cycles — the column axis.
    pub ticks: Vec<u64>,
    /// Channel rows, hottest first.
    pub rows: Vec<HeatmapRow>,
    /// Channels trimmed away by [`Heatmap::top`] (0 = complete).
    pub dropped: usize,
}

impl Heatmap {
    /// Builds the full heatmap from a sampled run's time series.
    pub fn from_series(series: &TimeSeries) -> Self {
        let mut rows: Vec<HeatmapRow> = series
            .channels
            .iter()
            .map(|c| HeatmapRow {
                router: c.router,
                port: c.port,
                class: format!("{:?}", c.class),
                occupancy: c.occupancy.clone(),
            })
            .collect();
        rows.sort_by(|a, b| {
            b.peak()
                .cmp(&a.peak())
                .then(a.router.cmp(&b.router))
                .then(a.port.cmp(&b.port))
        });
        Heatmap {
            every: series.every,
            ticks: series.ticks.clone(),
            rows,
            dropped: 0,
        }
    }

    /// Keeps only the `n` hottest channels, recording how many were
    /// dropped so exports never truncate silently.
    pub fn top(mut self, n: usize) -> Self {
        if self.rows.len() > n {
            self.dropped += self.rows.len() - n;
            self.rows.truncate(n);
        }
        self
    }

    /// The matrix as a JSON object: tick axis, per-row channel
    /// identity, and the occupancy samples.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let _ = write!(out, "\"every\": {}, \"ticks\": [", self.every);
        for (i, t) in self.ticks.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{t}");
        }
        let _ = write!(
            out,
            "], \"dropped_channels\": {}, \"rows\": [",
            self.dropped
        );
        for (i, r) in self.rows.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(
                out,
                "{{\"router\": {}, \"port\": {}, \"class\": \"{}\", \"peak\": {}, \"occupancy\": [",
                r.router,
                r.port,
                r.class,
                r.peak()
            );
            for (j, v) in r.occupancy.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{v}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }

    /// The matrix as a gnuplot data file: commented header identifying
    /// each row, then one whitespace-separated line of samples per
    /// channel — directly plottable with
    /// `plot 'heatmap.dat' matrix with image`.
    pub fn to_gnuplot(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "# channel x time occupancy heatmap: rows = channels (peak-ranked), cols = sample ticks"
        );
        let _ = writeln!(
            out,
            "# every {} cycles, {} rows x {} ticks ({} channels dropped)",
            self.every,
            self.rows.len(),
            self.ticks.len(),
            self.dropped
        );
        let _ = writeln!(out, "# plot with: plot 'heatmap.dat' matrix with image");
        for (i, r) in self.rows.iter().enumerate() {
            let _ = writeln!(
                out,
                "# row {i}: router {} port {} class {} peak {}",
                r.router,
                r.port,
                r.class,
                r.peak()
            );
        }
        for r in &self.rows {
            let mut line = String::new();
            for (j, v) in r.occupancy.iter().enumerate() {
                if j > 0 {
                    line.push(' ');
                }
                let _ = write!(line, "{v}");
            }
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dfly_netsim::{ChannelClass, ChannelSeries};

    fn series() -> TimeSeries {
        TimeSeries {
            every: 32,
            vcs: 2,
            ticks: vec![32, 64, 96],
            channels: vec![
                ChannelSeries {
                    router: 0,
                    port: 1,
                    class: ChannelClass::Local,
                    occupancy: vec![1, 2, 1],
                    vc_occupancy: vec![],
                    credits: vec![],
                    sent: vec![],
                },
                ChannelSeries {
                    router: 3,
                    port: 0,
                    class: ChannelClass::Global,
                    occupancy: vec![0, 7, 4],
                    vc_occupancy: vec![],
                    credits: vec![],
                    sent: vec![],
                },
            ],
        }
    }

    #[test]
    fn rows_are_peak_ranked() {
        let hm = Heatmap::from_series(&series());
        assert_eq!(hm.rows.len(), 2);
        assert_eq!((hm.rows[0].router, hm.rows[0].port), (3, 0));
        assert_eq!(hm.rows[0].peak(), 7);
        assert_eq!(hm.rows[1].peak(), 2);
        assert_eq!(hm.dropped, 0);
    }

    #[test]
    fn top_records_dropped_rows() {
        let hm = Heatmap::from_series(&series()).top(1);
        assert_eq!(hm.rows.len(), 1);
        assert_eq!(hm.dropped, 1);
        assert!(hm.to_json().contains("\"dropped_channels\": 1"));
        // top() beyond the row count is a no-op.
        let full = Heatmap::from_series(&series()).top(10);
        assert_eq!(full.dropped, 0);
    }

    #[test]
    fn json_and_gnuplot_round_the_matrix() {
        let hm = Heatmap::from_series(&series());
        let json = hm.to_json();
        assert!(json.contains("\"ticks\": [32, 64, 96]"));
        assert!(json.contains("\"class\": \"Global\""));
        assert!(json.contains("\"occupancy\": [0, 7, 4]"));
        let gp = hm.to_gnuplot();
        assert!(gp.contains("matrix with image"));
        assert!(gp.contains("# row 0: router 3 port 0 class Global peak 7"));
        // Data lines: hottest channel first.
        let data: Vec<&str> = gp.lines().filter(|l| !l.starts_with('#')).collect();
        assert_eq!(data, vec!["0 7 4", "1 2 1"]);
    }
}
