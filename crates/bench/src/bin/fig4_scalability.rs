//! Regenerates Figure 4: dragonfly scalability vs router radix.
fn main() {
    dfly_bench::figures::fig4();
}
