//! Engine performance baseline: times a Figure 8-equivalent load sweep
//! serially and across the worker pool, verifies the results are bit
//! identical, collects the engine's per-phase counters for one
//! representative run, and writes everything to
//! `BENCH_parallel_sweep.json` (run from the repository root).
//!
//! Knobs: `DFLY_THREADS` bounds the pool, `DFLY_QUICK=1` shortens the
//! simulation windows.

use std::fmt::Write as _;
use std::time::Instant;

use dfly_bench::Windows;
use dragonfly::parallel::configured_threads;
use dragonfly::{FaultSweep, RoutingChoice, RunGrid, TrafficChoice};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let win = Windows::from_env();
    let sim = dfly_bench::paper_network();

    // The Figure 8 experiment: the four routing families of the paper
    // swept over uniform-random load on the 1K-node network.
    let choices = [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalL,
        RoutingChoice::UgalG,
    ];
    let loads = win.thin(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
    let mut base = win.config(0.1);
    base.seed = 1;
    let grid = RunGrid::cross(&choices, &[TrafficChoice::Uniform], &loads, &base);

    let threads = configured_threads();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perfstat: {} runs, {} thread(s) configured, {} hardware thread(s)",
        grid.len(),
        threads,
        hw
    );

    let t0 = Instant::now();
    let serial = grid.execute_serial(&sim);
    let serial_secs = t0.elapsed().as_secs_f64();
    eprintln!("perfstat: serial sweep {serial_secs:.3}s");

    let t0 = Instant::now();
    let parallel = grid.execute_on(&sim, threads);
    let parallel_secs = t0.elapsed().as_secs_f64();
    eprintln!("perfstat: parallel sweep {parallel_secs:.3}s");

    let bit_identical = serial == parallel;
    assert!(bit_identical, "parallel sweep diverged from serial sweep");
    let speedup = serial_secs / parallel_secs.max(1e-12);
    eprintln!("perfstat: speedup {speedup:.2}x (bit-identical: {bit_identical})");

    // A small deterministic fault-degradation curve: saturation
    // throughput with 0, 1/16 and 1/8 of the global cables failed.
    let fault_fractions = [0.0, 1.0 / 16.0, 1.0 / 8.0];
    let mut fault_cfg = win.config(1.0);
    fault_cfg.seed = 1;
    let fault_sweep = FaultSweep::new(
        dfly_bench::paper_params(),
        RoutingChoice::UgalLVcH,
        TrafficChoice::Uniform,
        &fault_cfg,
        &fault_fractions,
        42,
    );
    let t0 = Instant::now();
    let fault_points = fault_sweep.execute().expect("fault plans must apply");
    let fault_secs = t0.elapsed().as_secs_f64();
    let fault_serial = fault_sweep
        .execute_serial()
        .expect("fault plans must apply");
    let fault_identical = fault_points == fault_serial;
    assert!(fault_identical, "parallel fault sweep diverged from serial");
    let fault_monotone = fault_points
        .windows(2)
        .all(|pair| pair[1].throughput() <= pair[0].throughput() + 1e-9);
    eprintln!(
        "perfstat: fault sweep {fault_secs:.3}s, throughputs {:?} (monotone: {fault_monotone})",
        fault_points
            .iter()
            .map(|pt| (pt.throughput() * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );

    // Single-run hot-path counters at a representative operating point.
    let mut cfg = win.config(0.3);
    cfg.seed = 1;
    let (stats, perf) = sim.run_instrumented(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg);
    eprintln!(
        "perfstat: single run {} cycles in {:.3}s ({:.0} cycles/s, {:.0} flit-hops/s)",
        perf.cycles,
        perf.wall.as_secs_f64(),
        perf.cycles_per_sec(),
        perf.flit_hops_per_sec()
    );

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"parallel_sweep_fig8\",");
    let _ = writeln!(
        json,
        "  \"network\": \"dragonfly p=4 a=8 h=4 (1056 terminals)\","
    );
    let _ = writeln!(
        json,
        "  \"windows\": {{\"warmup\": {}, \"measure\": {}, \"drain_cap\": {}}},",
        win.warmup, win.measure, win.drain_cap
    );
    let _ = writeln!(json, "  \"runs\": {},", grid.len());
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.6},");
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"bit_identical\": {bit_identical},");
    let _ = writeln!(json, "  \"single_run\": {{");
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalL.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"load\": 0.3,");
    let _ = writeln!(json, "    \"cycles\": {},", perf.cycles);
    let _ = writeln!(json, "    \"wall_secs\": {:.6},", perf.wall.as_secs_f64());
    let _ = writeln!(
        json,
        "    \"cycles_per_sec\": {:.1},",
        perf.cycles_per_sec()
    );
    let _ = writeln!(json, "    \"flit_hops\": {},", perf.flit_hops);
    let _ = writeln!(
        json,
        "    \"flit_hops_per_sec\": {:.1},",
        perf.flit_hops_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"avg_latency\": {},",
        stats
            .avg_latency()
            .map_or("null".to_string(), |l| format!("{l:.3}"))
    );
    let tel = stats.routing;
    let _ = writeln!(
        json,
        "    \"routing_telemetry\": {{\"minimal_takes\": {}, \"non_minimal_takes\": {}, \
         \"adaptive_decisions\": {}, \"estimator_disagreements\": {}, \
         \"fault_avoided_decisions\": {}, \"dropped_candidates\": {}, \
         \"oracle_probe_fallbacks\": {}, \
         \"minimal_take_rate\": {}, \"disagreement_rate\": {}}},",
        tel.minimal_takes,
        tel.non_minimal_takes,
        tel.adaptive_decisions,
        tel.estimator_disagreements,
        tel.fault_avoided_decisions,
        tel.dropped_candidates,
        tel.oracle_probe_fallbacks,
        tel.minimal_take_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}")),
        tel.disagreement_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}")),
    );
    json.push_str("    \"phase_secs\": {");
    for (i, (name, d)) in dfly_netsim::SimPerf::PHASE_NAMES
        .iter()
        .zip(perf.phases.iter())
        .enumerate()
    {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{name}\": {:.6}", d.as_secs_f64());
    }
    json.push_str("}\n");
    json.push_str("  },\n");
    json.push_str("  \"fault_sweep\": {\n");
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalLVcH.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"fault_seed\": 42,");
    let _ = writeln!(json, "    \"secs\": {fault_secs:.6},");
    let _ = writeln!(json, "    \"bit_identical\": {fault_identical},");
    let _ = writeln!(json, "    \"monotone\": {fault_monotone},");
    json.push_str("    \"points\": [");
    for (i, pt) in fault_points.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"fraction\": {:.6}, \"failed_links\": {}, \"throughput\": {:.6}}}",
            pt.fraction,
            pt.failed_links,
            pt.throughput()
        );
    }
    json.push_str("]\n");
    json.push_str("  }\n");
    json.push_str("}\n");

    let path = "BENCH_parallel_sweep.json";
    std::fs::write(path, &json).expect("write baseline JSON");
    eprintln!("perfstat: wrote {path}");
    print!("{json}");
}
