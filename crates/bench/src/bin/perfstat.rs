//! Engine performance baseline: times a Figure 8-equivalent load sweep
//! serially and across the worker pool, verifies the results are bit
//! identical, collects the engine's per-phase counters for one
//! representative run, measures the telemetry layer (latency
//! histograms, channel time series, flit tracing, estimator-accuracy
//! scoreboard) and its overhead, measures the million-terminal scale
//! mode (build time, peak RSS and cycle rate at ~262K and ~1.1M
//! terminals), measures the stall watchdog (armed every 512 cycles it
//! must neither trip nor perturb a healthy run), and writes everything
//! to `BENCH_parallel_sweep.json` — including a `health` section with
//! the watchdog verdicts, warmup-convergence diagnostics and the
//! canonical wall-clock field list — plus a full telemetry artifact
//! `BENCH_telemetry.json` and a chrome://tracing span tree
//! `BENCH_span_trace.json` of the 4-shard run (run from the
//! repository root).
//!
//! Every sweep also runs a second leg through the on-disk campaign
//! store (`DFLY_CAMPAIGN_DIR`, default `target/campaign`): the first
//! run populates the journal, repeat runs are pure cache hits, and the
//! cached results are asserted bit-identical to the fresh ones. The
//! hit/miss counts land in the `"campaign"` section of the BENCH JSON.
//!
//! Knobs: `DFLY_THREADS` bounds the pool, `DFLY_QUICK=1` shortens the
//! simulation windows, `DFLY_CAMPAIGN_DIR` relocates the result store.

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;

use dfly_bench::heatmap::Heatmap;
use dfly_bench::{TopoCurve, Windows, WALLCLOCK_EXACT_KEYS, WALLCLOCK_FIELDS};
use dfly_netsim::{CreditMode, InjectionKind, SimConfig, Simulation, SpanTree, TelemetryConfig};
use dfly_topo::FlattenedButterfly;
use dfly_traffic::UniformRandom;
use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::parallel::{configured_threads, parallel_map};
use dragonfly::{
    atomic_write, CampaignStore, DragonflyParams, DragonflySim, FaultSweep, JobSpec, RoutingChoice,
    RunGrid, TrafficChoice, UgalVariant, WorkloadSweep,
};

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Process peak resident set size (`VmHWM`) in MB; `None` off Linux.
fn peak_rss_mb() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let kb: f64 = status
        .lines()
        .find(|l| l.starts_with("VmHWM:"))?
        .split_whitespace()
        .nth(1)?
        .parse()
        .ok()?;
    Some(kb / 1024.0)
}

/// One measured point of the scale-mode census.
struct ScalePoint {
    label: &'static str,
    p: usize,
    a: usize,
    h: usize,
    routers: usize,
    terminals: usize,
    build_secs: f64,
    cycles: u64,
    wall_secs: f64,
    cycles_per_sec: f64,
    accepted_rate: f64,
    peak_rss_mb: Option<f64>,
}

/// Fixed short windows for the scale runs: the measurement target is
/// memory and cycle rate, not statistics fidelity, so the windows do
/// not scale with `DFLY_QUICK`.
const SCALE_WARMUP: u64 = 60;
const SCALE_MEASURE: u64 = 120;
const SCALE_DRAIN_CAP: u64 = 3_000;
const SCALE_LOAD: f64 = 0.2;

fn fmt_opt(v: Option<f64>) -> String {
    v.map_or("null".to_string(), |x| format!("{x:.4}"))
}

fn fmt_opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |x| x.to_string())
}

fn median3(mut v: [f64; 3]) -> f64 {
    v.sort_by(f64::total_cmp);
    v[1]
}

/// The six congestion estimators scored against the oracle.
const ESTIMATORS: [(UgalVariant, &str); 6] = [
    (UgalVariant::Local, "queue_occupancy"),
    (UgalVariant::LocalVc, "vc_occupancy"),
    (UgalVariant::LocalVcHybrid, "vc_hybrid"),
    (UgalVariant::LocalEwma, "ewma_occupancy"),
    (UgalVariant::CreditRoundTrip, "credit_committed"),
    (UgalVariant::Global, "global_oracle"),
];

fn routing_for(variant: UgalVariant) -> RoutingChoice {
    match variant {
        UgalVariant::Local => RoutingChoice::UgalL,
        UgalVariant::LocalVc => RoutingChoice::UgalLVc,
        UgalVariant::LocalVcHybrid => RoutingChoice::UgalLVcH,
        UgalVariant::LocalEwma => RoutingChoice::UgalLEwma,
        UgalVariant::CreditRoundTrip => RoutingChoice::UgalLCr,
        UgalVariant::Global => RoutingChoice::UgalG,
    }
}

fn main() {
    let win = Windows::from_env();
    let sim = dfly_bench::paper_network();

    // The on-disk campaign store: every sweep below runs fresh first
    // (the timed legs), then again through the store. First invocation
    // populates the journal; repeat invocations with an unchanged tree
    // are 100% cache hits and byte-identical.
    let campaign_dir =
        std::env::var("DFLY_CAMPAIGN_DIR").unwrap_or_else(|_| "target/campaign".to_string());
    let store = CampaignStore::open(&campaign_dir).expect("campaign store must open");
    eprintln!(
        "perfstat: campaign store at {} (revision {}, {} entries)",
        store.dir().display(),
        store.revision(),
        store.len()
    );

    // The Figure 8 experiment: the four routing families of the paper
    // swept over uniform-random load on the 1K-node network.
    let choices = [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalL,
        RoutingChoice::UgalG,
    ];
    let loads = win.thin(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8]);
    let mut base = win.config(0.1);
    base.seed = 1;
    let grid = RunGrid::cross(&choices, &[TrafficChoice::Uniform], &loads, &base);

    let threads = configured_threads();
    let hw = std::thread::available_parallelism().map_or(1, |n| n.get());
    eprintln!(
        "perfstat: {} runs, {} thread(s) configured, {} hardware thread(s)",
        grid.len(),
        threads,
        hw
    );

    let t0 = Instant::now();
    let serial = grid.execute_serial(&sim);
    let serial_secs = t0.elapsed().as_secs_f64();
    eprintln!("perfstat: serial sweep {serial_secs:.3}s");

    // The parallel leg also folds every run into one merged metrics
    // registry (merge order is plan order, independent of threading).
    let t0 = Instant::now();
    let (parallel, registry) = grid.execute_with_metrics_on(&sim, threads);
    let parallel_secs = t0.elapsed().as_secs_f64();
    eprintln!("perfstat: parallel sweep {parallel_secs:.3}s");

    let bit_identical = serial == parallel;
    assert!(bit_identical, "parallel sweep diverged from serial sweep");
    let speedup = serial_secs / parallel_secs.max(1e-12);
    eprintln!("perfstat: speedup {speedup:.2}x (bit-identical: {bit_identical})");

    // Campaign leg: the same grid through the store. Misses simulate
    // and journal; hits decode from disk. Either way the results must
    // be bit-identical to the fresh sweep above.
    let t0 = Instant::now();
    let (grid_cached, grid_report) = grid
        .execute_cached(&sim, &store)
        .expect("campaign grid leg must run");
    let grid_cached_secs = t0.elapsed().as_secs_f64();
    let grid_cached_identical = grid_cached == serial;
    assert!(
        grid_cached_identical,
        "cached sweep diverged from fresh sweep"
    );
    eprintln!(
        "perfstat: campaign grid leg {grid_cached_secs:.3}s ({} hits, {} misses)",
        grid_report.hits, grid_report.misses
    );

    // A small deterministic fault-degradation curve: saturation
    // throughput with 0, 1/16 and 1/8 of the global cables failed.
    let fault_fractions = [0.0, 1.0 / 16.0, 1.0 / 8.0];
    let mut fault_cfg = win.config(1.0);
    fault_cfg.seed = 1;
    // Channel occupancy sampling on every fault point: the heaviest
    // point's series becomes the channel x time heatmap artifact below.
    let fault_sample_every = 64u64;
    fault_cfg.telemetry = TelemetryConfig {
        sample_every: fault_sample_every,
        trace_rate: 0.0,
        trace_seed: 0,
    };
    let fault_sweep = FaultSweep::new(
        dfly_bench::paper_params(),
        RoutingChoice::UgalLVcH,
        TrafficChoice::Uniform,
        &fault_cfg,
        &fault_fractions,
        42,
    );
    let t0 = Instant::now();
    let fault_points = fault_sweep.execute().expect("fault plans must apply");
    let fault_secs = t0.elapsed().as_secs_f64();
    let fault_serial = fault_sweep
        .execute_serial()
        .expect("fault plans must apply");
    let fault_identical = fault_points == fault_serial;
    assert!(fault_identical, "parallel fault sweep diverged from serial");
    let (fault_cached, fault_report) = fault_sweep
        .execute_cached(&store)
        .expect("campaign fault leg must run");
    let fault_cached_identical = fault_cached == fault_points;
    assert!(
        fault_cached_identical,
        "cached fault sweep diverged from fresh sweep"
    );
    eprintln!(
        "perfstat: campaign fault leg {} hits, {} misses",
        fault_report.hits, fault_report.misses
    );
    let fault_monotone = fault_points
        .windows(2)
        .all(|pair| pair[1].throughput() <= pair[0].throughput() + 1e-9);
    eprintln!(
        "perfstat: fault sweep {fault_secs:.3}s, throughputs {:?} (monotone: {fault_monotone})",
        fault_points
            .iter()
            .map(|pt| (pt.throughput() * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );

    // Channel x time occupancy heatmap of the heaviest-fault point:
    // where the saturation load pools once 1/8 of the global cables are
    // gone. Trimmed to the 64 hottest channels (the exporter records
    // the drop count); JSON + a gnuplot `matrix with image` data file.
    let hot = fault_points.last().expect("fault sweep has points");
    let hot_series = hot
        .stats
        .series
        .as_ref()
        .expect("fault sweep sampling was enabled");
    let fault_heatmap = Heatmap::from_series(hot_series).top(64);
    eprintln!(
        "perfstat: fault heatmap at fraction {:.4}: {} x {} of {} channels ({} dropped)",
        hot.fraction,
        fault_heatmap.rows.len(),
        fault_heatmap.ticks.len(),
        hot_series.channels.len(),
        fault_heatmap.dropped,
    );
    atomic_write(
        "BENCH_fault_heatmap.json",
        fault_heatmap.to_json().as_bytes(),
    )
    .expect("write heatmap JSON");
    atomic_write(
        "BENCH_fault_heatmap.dat",
        fault_heatmap.to_gnuplot().as_bytes(),
    )
    .expect("write heatmap gnuplot data");
    eprintln!("perfstat: wrote BENCH_fault_heatmap.json / BENCH_fault_heatmap.dat");

    // Closed-loop workload mix: two 8-rank all-to-all tenants on the
    // 72-terminal network, group-disjoint vs interfering placement,
    // with and without untracked background load. Work-complete runs;
    // per-job completion time and the co-location slowdown come from
    // the job books.
    let mut wl_cfg = SimConfig::paper_default(0.0);
    wl_cfg.warmup = 0;
    wl_cfg.measure = 30_000;
    wl_cfg.drain_cap = 30_000;
    let wl_loads = [0.0, 0.3];
    let wl_sweep = WorkloadSweep::new(
        DragonflyParams::new(2, 4, 2).expect("valid params"),
        RoutingChoice::Min,
        vec![
            JobSpec::all_to_all("alpha", 8),
            JobSpec::all_to_all("beta", 8),
        ],
        &wl_cfg,
        &wl_loads,
    );
    let t0 = Instant::now();
    let (wl_points, wl_registry) = wl_sweep
        .execute_with_metrics()
        .expect("workload mix must place");
    let wl_secs = t0.elapsed().as_secs_f64();
    let wl_serial = wl_sweep.execute_serial().expect("workload mix must place");
    let wl_identical = wl_points == wl_serial;
    assert!(wl_identical, "parallel workload sweep diverged from serial");
    let (wl_cached, wl_report) = wl_sweep
        .execute_cached(&store)
        .expect("campaign workload leg must run");
    let wl_cached_identical = wl_cached == wl_points;
    assert!(
        wl_cached_identical,
        "cached workload sweep diverged from fresh sweep"
    );
    eprintln!(
        "perfstat: campaign workload leg {} hits, {} misses",
        wl_report.hits, wl_report.misses
    );
    for pt in &wl_points {
        assert!(
            pt.stats.completion.is_some(),
            "workload point {:?}@{} hit the cycle cap",
            pt.placement,
            pt.background_load
        );
    }
    let wl_slowdowns = wl_sweep.slowdowns(&wl_points);
    for s in &wl_slowdowns {
        eprintln!(
            "perfstat: workload {} @ bg {:.1}: disjoint {} vs interfering {} cycles (x{:.2})",
            s.job,
            s.background_load,
            s.disjoint,
            s.interfering,
            s.ratio()
        );
        if s.background_load > 0.0 {
            assert!(
                s.ratio() > 1.0,
                "{} must slow down under interfering placement at bg {}",
                s.job,
                s.background_load
            );
        }
    }
    eprintln!(
        "perfstat: workload sweep {wl_secs:.3}s over {} runs (bit-identical: {wl_identical})",
        wl_points.len()
    );

    // Single-run hot-path counters at a representative operating
    // point, interleaved with the telemetry overhead measurement: each
    // round runs the instrumented engine (the reference), the plain
    // engine with telemetry left disabled (the default), the plain
    // engine with sampling + tracing switched on, and the plain engine
    // with the stall watchdog armed. Interleaving keeps the medians
    // comparable under machine noise; excess of the disabled median
    // over the reference means telemetry work leaking into the
    // disabled hot path.
    let mut single = None;
    let mut disabled_stats = None;
    let mut watchdog_stats = None;
    let mut stalls = 0usize;
    let mut reference_wall = [0.0; 3];
    let mut disabled_wall = [0.0; 3];
    let mut enabled_wall = [0.0; 3];
    let mut watchdog_wall = [0.0; 3];
    for round in 0..3 {
        let mut cfg = win.config(0.3);
        cfg.seed = 1;
        let (stats, perf) = sim.run_instrumented(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg);
        reference_wall[round] = perf.wall.as_secs_f64();
        if single.is_none() {
            single = Some((stats, perf));
        }

        let mut cfg = win.config(0.3);
        cfg.seed = 1;
        let t0 = Instant::now();
        let dstats = sim.run(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg);
        disabled_wall[round] = t0.elapsed().as_secs_f64();
        if disabled_stats.is_none() {
            disabled_stats = Some(dstats);
        }

        let mut cfg = win.config(0.3);
        cfg.seed = 1;
        cfg.telemetry = TelemetryConfig {
            sample_every: 256,
            trace_rate: 0.01,
            trace_seed: 7,
        };
        let t0 = Instant::now();
        let _ = sim.run(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg);
        enabled_wall[round] = t0.elapsed().as_secs_f64();

        // Watchdog leg: the same healthy run with in-band stall checks
        // every 512 cycles. It must neither trip nor perturb the stats.
        let mut cfg = win.config(0.3);
        cfg.seed = 1;
        cfg.watchdog_every = 512;
        let t0 = Instant::now();
        match sim.try_run(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg) {
            Ok(wstats) => {
                if watchdog_stats.is_none() {
                    watchdog_stats = Some(wstats);
                }
            }
            Err(e) => {
                stalls += 1;
                eprintln!("perfstat: watchdog leg failed: {e}");
            }
        }
        watchdog_wall[round] = t0.elapsed().as_secs_f64();
    }
    let (stats, perf) = single.expect("three rounds ran");
    assert_eq!(
        stalls, 0,
        "healthy perfstat runs tripped the stall watchdog"
    );
    let watchdog_transparent = watchdog_stats.as_ref() == disabled_stats.as_ref();
    assert!(
        watchdog_transparent,
        "the armed watchdog perturbed the run statistics"
    );
    assert!(
        stats.converged,
        "reference run warmup did not converge: throughput drift {:?}, latency drift {:?}",
        stats.warmup_throughput_drift, stats.warmup_latency_drift
    );

    // Sharded single-run scaling: the same operating point on 1, 2 and
    // 4 router shards. The stats must be bit identical across shard
    // counts (the engine's core guarantee), and the medians feed the CI
    // overhead and speedup guards. Rounds are interleaved across shard
    // counts so the medians stay comparable under machine noise.
    let shard_counts = [1usize, 2, 4];
    let mut shard_walls = vec![Vec::with_capacity(3); shard_counts.len()];
    let mut shard_stats = Vec::new();
    let mut span_perf = None;
    for round in 0..3 {
        for (i, &sc) in shard_counts.iter().enumerate() {
            let mut cfg = win.config(0.3);
            cfg.seed = 1;
            cfg.shards = sc;
            let (sstats, sperf) =
                sim.run_instrumented(RoutingChoice::UgalL, TrafficChoice::Uniform, cfg);
            assert_eq!(
                sperf.shards, sc,
                "engine did not honour the requested shard count"
            );
            shard_walls[i].push(sperf.wall.as_secs_f64());
            if round == 0 {
                if sc == 4 {
                    span_perf = Some(sperf.clone());
                }
                shard_stats.push((sstats, sperf.cycles));
            }
        }
    }
    let shard_cycles = shard_stats[0].1;
    let sharded_identical = shard_stats.iter().all(|(st, _)| *st == shard_stats[0].0);
    assert!(
        sharded_identical,
        "sharded runs diverged from the 1-shard run"
    );
    let shard_medians: Vec<f64> = shard_walls
        .iter()
        .map(|w| median3([w[0], w[1], w[2]]))
        .collect();
    for (&sc, &secs) in shard_counts.iter().zip(&shard_medians) {
        eprintln!(
            "perfstat: sharded single run x{sc}: {secs:.3}s ({:.0} cycles/s)",
            shard_cycles as f64 / secs.max(1e-12)
        );
    }

    // Engine -> phase -> shard span tree of the 4-shard run, exported
    // as a chrome://tracing artifact (load it via about:tracing or
    // ui.perfetto.dev).
    let span_perf = span_perf.expect("4-shard run recorded its counters");
    let span_tree = SpanTree::from_perf(&span_perf);
    atomic_write(
        "BENCH_span_trace.json",
        span_tree.to_chrome_json().as_bytes(),
    )
    .expect("write span trace JSON");
    eprintln!(
        "perfstat: wrote BENCH_span_trace.json ({} spans over {} shards)",
        span_tree.len(),
        span_perf.shards
    );

    // Million-terminal scale mode (the paper's Figure 4 regime):
    // arithmetic routing plus the flit arena keep router memory
    // O(radix), so these networks build and run in commodity RAM.
    // Each point times the harness build (topology + spec wiring),
    // runs a short MIN/uniform point with `SimConfig::scale_mode` on,
    // and snapshots the process peak RSS afterwards. `VmHWM` is a
    // process-wide monotone high-water mark, so the points run
    // smallest-first and each snapshot covers everything up to it.
    let scale_cases = [("262k", 16usize, 32usize, 16usize), ("1.1m", 23, 46, 23)];
    let mut scale_rows: Vec<ScalePoint> = Vec::new();
    for (label, p, a, h) in scale_cases {
        let params = DragonflyParams::new(p, a, h).expect("valid scale params");
        let t0 = Instant::now();
        let scale_sim = DragonflySim::new(params);
        let build_secs = t0.elapsed().as_secs_f64();
        let mut cfg = win.config(SCALE_LOAD);
        cfg.seed = 1;
        cfg.warmup = SCALE_WARMUP;
        cfg.measure = SCALE_MEASURE;
        cfg.drain_cap = SCALE_DRAIN_CAP;
        cfg.scale_mode = true;
        let (sstats, sperf) =
            scale_sim.run_instrumented(RoutingChoice::Min, TrafficChoice::Uniform, cfg);
        assert!(
            sstats.channel_loads.is_empty(),
            "scale mode kept per-channel load counters"
        );
        assert!(
            sstats.accepted_rate > 0.0,
            "scale {label}: nothing delivered"
        );
        let rss = peak_rss_mb();
        eprintln!(
            "perfstat: scale {label}: p={p} a={a} h={h}, {} routers, {} terminals, \
             build {build_secs:.3}s, {} cycles in {:.3}s ({:.0} cycles/s), peak RSS {}",
            scale_sim.spec().num_routers(),
            scale_sim.spec().num_terminals(),
            sperf.cycles,
            sperf.wall.as_secs_f64(),
            sperf.cycles_per_sec(),
            rss.map_or("n/a".to_string(), |m| format!("{m:.0} MB")),
        );
        scale_rows.push(ScalePoint {
            label,
            p,
            a,
            h,
            routers: scale_sim.spec().num_routers(),
            terminals: scale_sim.spec().num_terminals(),
            build_secs,
            cycles: sperf.cycles,
            wall_secs: sperf.wall.as_secs_f64(),
            cycles_per_sec: sperf.cycles_per_sec(),
            accepted_rate: sstats.accepted_rate,
            peak_rss_mb: rss,
        });
    }

    eprintln!(
        "perfstat: single run {} cycles in {:.3}s ({:.0} cycles/s, {:.0} flit-hops/s)",
        perf.cycles,
        perf.wall.as_secs_f64(),
        perf.cycles_per_sec(),
        perf.flit_hops_per_sec()
    );
    let reference_secs = median3(reference_wall);
    let disabled_secs = median3(disabled_wall);
    let enabled_secs = median3(enabled_wall);
    let disabled_over_reference = disabled_secs / reference_secs.max(1e-12);
    let enabled_over_disabled = enabled_secs / disabled_secs.max(1e-12);
    eprintln!(
        "perfstat: telemetry off {disabled_secs:.3}s ({disabled_over_reference:.3}x reference \
         {reference_secs:.3}s), on {enabled_secs:.3}s ({enabled_over_disabled:.3}x off)"
    );
    let watchdog_secs = median3(watchdog_wall);
    let watchdog_over_disabled = watchdog_secs / disabled_secs.max(1e-12);
    eprintln!(
        "perfstat: watchdog armed {watchdog_secs:.3}s ({watchdog_over_disabled:.3}x off, \
         transparent: {watchdog_transparent}, converged: {})",
        stats.converged
    );

    // A fully instrumented small run: channel time series sampled every
    // 32 cycles and a 5% seeded flit trace, exported in full to
    // BENCH_telemetry.json.
    let df_small = DragonflySim::new(DragonflyParams::new(2, 4, 2).expect("valid params"));
    let sample_every = 32u64;
    let trace_rate = 0.05f64;
    let trace_seed = 7u64;
    let mut tcfg = win.config(0.3);
    tcfg.seed = 1;
    tcfg.telemetry = TelemetryConfig {
        sample_every,
        trace_rate,
        trace_seed,
    };
    let t0 = Instant::now();
    let tstats = df_small.run(RoutingChoice::UgalL, TrafficChoice::Uniform, tcfg);
    let telemetry_secs = t0.elapsed().as_secs_f64();
    let series = tstats.series.as_ref().expect("sampling was enabled");
    let trace = tstats.trace.as_ref().expect("tracing was enabled");
    let mut ranked: Vec<usize> = (0..series.channels.len()).collect();
    ranked.sort_by(|&a, &b| {
        let (ca, cb) = (&series.channels[a], &series.channels[b]);
        cb.peak_occupancy()
            .cmp(&ca.peak_occupancy())
            .then(ca.router.cmp(&cb.router))
            .then(ca.port.cmp(&cb.port))
    });
    eprintln!(
        "perfstat: telemetry run {} ticks x {} channels, {} trace events, p50/p95/p99/max = {}/{}/{}/{}",
        series.ticks.len(),
        series.channels.len(),
        trace.events.len(),
        fmt_opt_u64(tstats.p50_latency()),
        fmt_opt_u64(tstats.p95_latency()),
        fmt_opt_u64(tstats.p99_latency()),
        fmt_opt_u64(tstats.max_latency()),
    );

    // Estimator-accuracy scoreboard: every congestion estimator scored
    // against the oracle queue depth at each UGAL decision, on the
    // dragonfly and the flattened butterfly, under bursty Markov
    // on/off injection.
    let acc_injection = InjectionKind::MarkovOnOff {
        rate: 0.2,
        burst_len: 8.0,
        duty: 0.5,
    };
    let fbn = Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 6, 2)));
    let fb_spec = Arc::new(fbn.build_spec());
    let mut acc_curves = Vec::new();
    for (variant, est) in ESTIMATORS {
        acc_curves.push(TopoCurve {
            label: format!("dragonfly/{est}"),
            ..TopoCurve::dragonfly(&df_small, routing_for(variant), TrafficChoice::Uniform)
        });
    }
    for (variant, est) in ESTIMATORS {
        acc_curves.push(TopoCurve {
            label: format!("butterfly/{est}"),
            round_trip_credits: variant == UgalVariant::CreditRoundTrip,
            ..TopoCurve::new(
                "",
                Arc::clone(&fb_spec),
                Arc::new(ButterflyRouting::ugal(Arc::clone(&fbn), variant)),
                Arc::new(UniformRandom::new(fb_spec.num_terminals())),
            )
        });
    }
    let t0 = Instant::now();
    let boards = parallel_map(&acc_curves, |tc| {
        let mut cfg = win.config(0.2);
        cfg.seed = 1;
        cfg.injection = acc_injection;
        if tc.round_trip_credits && cfg.credit_mode == CreditMode::Conventional {
            cfg.credit_mode = CreditMode::round_trip();
        }
        Simulation::new(&tc.spec, tc.routing.as_ref(), tc.pattern.as_ref(), cfg)
            .expect("estimator-accuracy run must be valid")
            .finish()
            .scoreboard
    });
    let acc_secs = t0.elapsed().as_secs_f64();
    for (tc, board) in acc_curves.iter().zip(&boards) {
        assert!(board.scored > 0, "{}: no scored decisions", tc.label);
        if tc.label.ends_with("global_oracle") {
            // The oracle estimator scored against itself is exact.
            assert_eq!(
                board.mean_abs_error(),
                Some(0.0),
                "{}: oracle must have zero error",
                tc.label
            );
        }
    }
    eprintln!(
        "perfstat: estimator accuracy {acc_secs:.3}s over {} runs",
        boards.len()
    );
    for (tc, board) in acc_curves.iter().zip(&boards) {
        eprintln!(
            "perfstat:   {:28} abs_err {} disagree {}",
            tc.label,
            fmt_opt(board.mean_abs_error()),
            fmt_opt(board.disagreement_rate()),
        );
    }

    let mut json = String::new();
    json.push_str("{\n");
    let _ = writeln!(json, "  \"benchmark\": \"parallel_sweep_fig8\",");
    let _ = writeln!(
        json,
        "  \"network\": \"dragonfly p=4 a=8 h=4 (1056 terminals)\","
    );
    let _ = writeln!(
        json,
        "  \"windows\": {{\"warmup\": {}, \"measure\": {}, \"drain_cap\": {}}},",
        win.warmup, win.measure, win.drain_cap
    );
    let _ = writeln!(json, "  \"runs\": {},", grid.len());
    let _ = writeln!(json, "  \"threads\": {threads},");
    let _ = writeln!(json, "  \"hardware_threads\": {hw},");
    let _ = writeln!(json, "  \"serial_secs\": {serial_secs:.6},");
    let _ = writeln!(json, "  \"parallel_secs\": {parallel_secs:.6},");
    let _ = writeln!(json, "  \"speedup\": {speedup:.4},");
    let _ = writeln!(json, "  \"bit_identical\": {bit_identical},");
    let _ = writeln!(json, "  \"single_run\": {{");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(json, "    \"shards\": {},", perf.shards);
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalL.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"load\": 0.3,");
    let _ = writeln!(json, "    \"cycles\": {},", perf.cycles);
    let _ = writeln!(json, "    \"wall_secs\": {:.6},", perf.wall.as_secs_f64());
    let _ = writeln!(
        json,
        "    \"cycles_per_sec\": {:.1},",
        perf.cycles_per_sec()
    );
    let _ = writeln!(json, "    \"flit_hops\": {},", perf.flit_hops);
    let _ = writeln!(
        json,
        "    \"flit_hops_per_sec\": {:.1},",
        perf.flit_hops_per_sec()
    );
    let _ = writeln!(
        json,
        "    \"avg_latency\": {},",
        stats
            .avg_latency()
            .map_or("null".to_string(), |l| format!("{l:.3}"))
    );
    let tel = stats.routing;
    let _ = writeln!(
        json,
        "    \"routing_telemetry\": {{\"minimal_takes\": {}, \"non_minimal_takes\": {}, \
         \"adaptive_decisions\": {}, \"estimator_disagreements\": {}, \
         \"fault_avoided_decisions\": {}, \"dropped_candidates\": {}, \
         \"oracle_probe_fallbacks\": {}, \
         \"minimal_take_rate\": {}, \"disagreement_rate\": {}}},",
        tel.minimal_takes,
        tel.non_minimal_takes,
        tel.adaptive_decisions,
        tel.estimator_disagreements,
        tel.fault_avoided_decisions,
        tel.dropped_candidates,
        tel.oracle_probe_fallbacks,
        tel.minimal_take_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}")),
        tel.disagreement_rate()
            .map_or("null".to_string(), |r| format!("{r:.4}")),
    );
    json.push_str("    \"phase_secs\": {");
    for (i, (name, d)) in dfly_netsim::SimPerf::PHASE_NAMES
        .iter()
        .zip(perf.phases.iter())
        .enumerate()
    {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{name}\": {:.6}", d.as_secs_f64());
    }
    json.push_str("}\n");
    json.push_str("  },\n");

    json.push_str("  \"sharded_single_run\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalL.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"load\": 0.3,");
    let _ = writeln!(json, "    \"cycles\": {shard_cycles},");
    let _ = writeln!(json, "    \"bit_identical\": {sharded_identical},");
    json.push_str("    \"points\": [");
    for (i, (&sc, &secs)) in shard_counts.iter().zip(&shard_medians).enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"shards\": {sc}, \"wall_secs\": {secs:.6}, \"cycles_per_sec\": {:.1}}}",
            shard_cycles as f64 / secs.max(1e-12)
        );
    }
    json.push_str("]\n");
    json.push_str("  },\n");

    json.push_str("  \"scale_mode\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(json, "    \"shards\": 1,");
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::Min.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"load\": {SCALE_LOAD},");
    let _ = writeln!(
        json,
        "    \"windows\": {{\"warmup\": {SCALE_WARMUP}, \"measure\": {SCALE_MEASURE}, \
         \"drain_cap\": {SCALE_DRAIN_CAP}}},"
    );
    json.push_str("    \"points\": [\n");
    for (i, sp) in scale_rows.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"label\": \"{}\", \"p\": {}, \"a\": {}, \"h\": {}, \
             \"routers\": {}, \"terminals\": {}, \"build_secs\": {:.6}, \
             \"cycles\": {}, \"wall_secs\": {:.6}, \"cycles_per_sec\": {:.1}, \
             \"accepted_rate\": {:.6}, \"peak_rss_mb\": {}}}",
            sp.label,
            sp.p,
            sp.a,
            sp.h,
            sp.routers,
            sp.terminals,
            sp.build_secs,
            sp.cycles,
            sp.wall_secs,
            sp.cycles_per_sec,
            sp.accepted_rate,
            sp.peak_rss_mb
                .map_or("null".to_string(), |m| format!("{m:.1}")),
        );
        json.push_str(if i + 1 < scale_rows.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");

    json.push_str("  \"telemetry\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(json, "    \"shards\": 1,");
    let _ = writeln!(
        json,
        "    \"network\": \"dragonfly p=2 a=4 h=2 (72 terminals)\","
    );
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalL.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"load\": 0.3,");
    let _ = writeln!(json, "    \"sample_every\": {sample_every},");
    let _ = writeln!(json, "    \"trace_rate\": {trace_rate},");
    let _ = writeln!(json, "    \"trace_seed\": {trace_seed},");
    let _ = writeln!(json, "    \"secs\": {telemetry_secs:.6},");
    let _ = writeln!(
        json,
        "    \"latency\": {{\"p50\": {}, \"p95\": {}, \"p99\": {}, \"max\": {}, \"histogram\": {}}},",
        fmt_opt_u64(tstats.p50_latency()),
        fmt_opt_u64(tstats.p95_latency()),
        fmt_opt_u64(tstats.p99_latency()),
        fmt_opt_u64(tstats.max_latency()),
        tstats.latency_log.to_json(),
    );
    let _ = writeln!(json, "    \"series_ticks\": {},", series.ticks.len());
    let _ = writeln!(json, "    \"series_channels\": {},", series.channels.len());
    // Top channels by peak occupancy; the full per-channel series lives
    // in BENCH_telemetry.json.
    json.push_str("    \"top_channels\": [");
    for (i, &ch) in ranked.iter().take(5).enumerate() {
        let c = &series.channels[ch];
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"router\": {}, \"port\": {}, \"class\": \"{:?}\", \
             \"peak_occupancy\": {}, \"mean_utilization\": {:.4}}}",
            c.router,
            c.port,
            c.class,
            c.peak_occupancy(),
            c.mean_utilization(series.every),
        );
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"trace_events\": {},", trace.events.len());
    let _ = writeln!(json, "    \"sweep_registry\": {}", registry.to_json());
    json.push_str("  },\n");

    json.push_str("  \"estimator_accuracy\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(json, "    \"shards\": 1,");
    let _ = writeln!(
        json,
        "    \"injection\": {{\"kind\": \"markov_on_off\", \"rate\": 0.2, \"burst_len\": 8.0, \"duty\": 0.5}},"
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"load\": 0.2,");
    let _ = writeln!(json, "    \"secs\": {acc_secs:.6},");
    json.push_str("    \"estimators\": [\n");
    for (i, (tc, board)) in acc_curves.iter().zip(&boards).enumerate() {
        let (topo, est) = tc.label.split_once('/').expect("label is topo/estimator");
        let _ = write!(
            json,
            "      {{\"topology\": \"{}\", \"estimator\": \"{}\", \"decisions\": {}, \
             \"scored\": {}, \"mean_estimate\": {}, \"mean_oracle\": {}, \
             \"mean_abs_error\": {}, \"disagreement_rate\": {}}}",
            json_escape(topo),
            json_escape(est),
            board.decisions,
            board.scored,
            fmt_opt(board.mean_estimate()),
            fmt_opt(board.mean_oracle()),
            fmt_opt(board.mean_abs_error()),
            fmt_opt(board.disagreement_rate()),
        );
        json.push_str(if i + 1 < acc_curves.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    json.push_str("    ]\n");
    json.push_str("  },\n");

    json.push_str("  \"telemetry_overhead\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(json, "    \"shards\": 1,");
    let _ = writeln!(json, "    \"reference_secs\": {reference_secs:.6},");
    let _ = writeln!(json, "    \"disabled_secs\": {disabled_secs:.6},");
    let _ = writeln!(json, "    \"enabled_secs\": {enabled_secs:.6},");
    let _ = writeln!(
        json,
        "    \"disabled_over_reference\": {disabled_over_reference:.4},"
    );
    let _ = writeln!(
        json,
        "    \"enabled_over_disabled\": {enabled_over_disabled:.4}"
    );
    json.push_str("  },\n");

    json.push_str("  \"health\": {\n");
    let _ = writeln!(json, "    \"watchdog_every\": 512,");
    let _ = writeln!(json, "    \"stalls\": {stalls},");
    let _ = writeln!(
        json,
        "    \"watchdog_transparent\": {watchdog_transparent},"
    );
    let _ = writeln!(json, "    \"converged\": {},", stats.converged);
    let _ = writeln!(
        json,
        "    \"warmup_throughput_drift\": {},",
        fmt_opt(stats.warmup_throughput_drift)
    );
    let _ = writeln!(
        json,
        "    \"warmup_latency_drift\": {},",
        fmt_opt(stats.warmup_latency_drift)
    );
    let _ = writeln!(json, "    \"watchdog_secs\": {watchdog_secs:.6},");
    let _ = writeln!(
        json,
        "    \"watchdog_over_disabled\": {watchdog_over_disabled:.4},"
    );
    let _ = writeln!(
        json,
        "    \"span_trace\": {{\"file\": \"BENCH_span_trace.json\", \"spans\": {}, \"shards\": {}}},",
        span_tree.len(),
        span_perf.shards
    );
    json.push_str("    \"wallclock_fields\": [");
    for (i, f) in WALLCLOCK_FIELDS.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{}\"", json_escape(f));
    }
    json.push_str("],\n");
    json.push_str("    \"wallclock_exact\": [");
    for (i, f) in WALLCLOCK_EXACT_KEYS.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "\"{}\"", json_escape(f));
    }
    json.push_str("]\n");
    json.push_str("  },\n");

    json.push_str("  \"fault_sweep\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(json, "    \"shards\": 1,");
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalLVcH.label())
    );
    let _ = writeln!(json, "    \"traffic\": \"uniform\",");
    let _ = writeln!(json, "    \"fault_seed\": 42,");
    let _ = writeln!(json, "    \"secs\": {fault_secs:.6},");
    let _ = writeln!(json, "    \"bit_identical\": {fault_identical},");
    let _ = writeln!(json, "    \"monotone\": {fault_monotone},");
    json.push_str("    \"points\": [");
    for (i, pt) in fault_points.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"fraction\": {:.6}, \"failed_links\": {}, \"throughput\": {:.6}}}",
            pt.fraction,
            pt.failed_links,
            pt.throughput()
        );
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "    \"heatmap\": {{\"fraction\": {:.6}, \"sample_every\": {fault_sample_every}, \
         \"rows\": {}, \"ticks\": {}, \"dropped_channels\": {}, \
         \"file_json\": \"BENCH_fault_heatmap.json\", \"file_gnuplot\": \"BENCH_fault_heatmap.dat\"}}",
        hot.fraction,
        fault_heatmap.rows.len(),
        fault_heatmap.ticks.len(),
        fault_heatmap.dropped,
    );
    json.push_str("  },\n");

    json.push_str("  \"workloads\": {\n");
    let _ = writeln!(json, "    \"hardware_threads\": {hw},");
    let _ = writeln!(
        json,
        "    \"network\": \"dragonfly p=2 a=4 h=2 (72 terminals)\","
    );
    let _ = writeln!(
        json,
        "    \"routing\": \"{}\",",
        json_escape(RoutingChoice::Min.label())
    );
    json.push_str("    \"jobs\": [");
    for (i, job) in wl_sweep.jobs.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"name\": \"{}\", \"size\": {}}}",
            json_escape(&job.name),
            job.size
        );
    }
    json.push_str("],\n");
    json.push_str("    \"background_loads\": [");
    for (i, l) in wl_loads.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(json, "{l}");
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"secs\": {wl_secs:.6},");
    let _ = writeln!(json, "    \"bit_identical\": {wl_identical},");
    json.push_str("    \"points\": [\n");
    for (i, pt) in wl_points.iter().enumerate() {
        let _ = write!(
            json,
            "      {{\"placement\": \"{}\", \"background_load\": {}, \"completion\": {}, \
             \"drained\": {}, \"jobs\": [",
            pt.placement.label(),
            pt.background_load,
            fmt_opt_u64(pt.stats.completion),
            pt.stats.drained,
        );
        for (j, (spec, book)) in wl_sweep.jobs.iter().zip(&pt.books).enumerate() {
            if j > 0 {
                json.push_str(", ");
            }
            let _ = write!(
                json,
                "{{\"name\": \"{}\", \"delivered\": {}, \"completion\": {}, \
                 \"p50_latency\": {}, \"p99_latency\": {}}}",
                json_escape(&spec.name),
                book.delivered,
                book.completion,
                fmt_opt_u64(book.latency.percentile(0.5)),
                fmt_opt_u64(book.latency.percentile(0.99)),
            );
        }
        json.push_str("]}");
        json.push_str(if i + 1 < wl_points.len() { ",\n" } else { "\n" });
    }
    json.push_str("    ],\n");
    json.push_str("    \"slowdowns\": [");
    for (i, s) in wl_slowdowns.iter().enumerate() {
        if i > 0 {
            json.push_str(", ");
        }
        let _ = write!(
            json,
            "{{\"job\": \"{}\", \"background_load\": {}, \"disjoint\": {}, \
             \"interfering\": {}, \"ratio\": {:.4}}}",
            json_escape(&s.job),
            s.background_load,
            s.disjoint,
            s.interfering,
            s.ratio(),
        );
    }
    json.push_str("],\n");
    let _ = writeln!(json, "    \"registry\": {}", wl_registry.to_json());
    json.push_str("  },\n");

    let campaign_hits = grid_report.hits + fault_report.hits + wl_report.hits;
    let campaign_misses = grid_report.misses + fault_report.misses + wl_report.misses;
    let cached_matches_fresh =
        grid_cached_identical && fault_cached_identical && wl_cached_identical;
    json.push_str("  \"campaign\": {\n");
    let _ = writeln!(
        json,
        "    \"dir\": \"{}\",",
        json_escape(&store.dir().display().to_string())
    );
    let _ = writeln!(
        json,
        "    \"revision\": \"{}\",",
        json_escape(store.revision())
    );
    let _ = writeln!(
        json,
        "    \"grid\": {{\"hits\": {}, \"misses\": {}}},",
        grid_report.hits, grid_report.misses
    );
    let _ = writeln!(
        json,
        "    \"fault\": {{\"hits\": {}, \"misses\": {}}},",
        fault_report.hits, fault_report.misses
    );
    let _ = writeln!(
        json,
        "    \"workload\": {{\"hits\": {}, \"misses\": {}}},",
        wl_report.hits, wl_report.misses
    );
    let _ = writeln!(json, "    \"hits\": {campaign_hits},");
    let _ = writeln!(json, "    \"misses\": {campaign_misses},");
    let _ = writeln!(json, "    \"entries\": {},", store.len());
    let _ = writeln!(json, "    \"grid_cached_secs\": {grid_cached_secs:.6},");
    let _ = writeln!(json, "    \"cached_matches_fresh\": {cached_matches_fresh}");
    json.push_str("  }\n");
    json.push_str("}\n");

    let path = "BENCH_parallel_sweep.json";
    atomic_write(path, json.as_bytes()).expect("write baseline JSON");
    eprintln!("perfstat: wrote {path}");

    // The full telemetry artifact: complete latency histogram, every
    // channel's time series, the chrome-trace flit events and the full
    // scoreboard of the sampled small run, plus the estimator table.
    let mut tj = String::new();
    tj.push_str("{\n");
    let _ = writeln!(tj, "  \"benchmark\": \"telemetry\",");
    let _ = writeln!(tj, "  \"hardware_threads\": {hw},");
    let _ = writeln!(tj, "  \"shards\": 1,");
    let _ = writeln!(
        tj,
        "  \"network\": \"dragonfly p=2 a=4 h=2 (72 terminals)\","
    );
    let _ = writeln!(
        tj,
        "  \"routing\": \"{}\",",
        json_escape(RoutingChoice::UgalL.label())
    );
    let _ = writeln!(tj, "  \"traffic\": \"uniform\",");
    let _ = writeln!(tj, "  \"load\": 0.3,");
    let _ = writeln!(
        tj,
        "  \"windows\": {{\"warmup\": {}, \"measure\": {}, \"drain_cap\": {}}},",
        win.warmup, win.measure, win.drain_cap
    );
    let _ = writeln!(tj, "  \"sample_every\": {sample_every},");
    let _ = writeln!(tj, "  \"trace_rate\": {trace_rate},");
    let _ = writeln!(tj, "  \"trace_seed\": {trace_seed},");
    let _ = writeln!(
        tj,
        "  \"latency_histogram\": {},",
        tstats.latency_log.to_json()
    );
    let _ = writeln!(tj, "  \"scoreboard\": {},", tstats.scoreboard.to_json());
    let _ = writeln!(tj, "  \"series\": {},", series.to_json());
    let _ = writeln!(tj, "  \"chrome_trace\": {},", trace.to_chrome_json());
    tj.push_str("  \"estimator_accuracy\": [\n");
    for (i, (tc, board)) in acc_curves.iter().zip(&boards).enumerate() {
        let _ = write!(
            tj,
            "    {{\"label\": \"{}\", \"scoreboard\": {}}}",
            json_escape(&tc.label),
            board.to_json()
        );
        tj.push_str(if i + 1 < acc_curves.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    tj.push_str("  ]\n");
    tj.push_str("}\n");
    let tpath = "BENCH_telemetry.json";
    atomic_write(tpath, tj.as_bytes()).expect("write telemetry JSON");
    eprintln!("perfstat: wrote {tpath}");

    print!("{json}");
}
