//! Regenerates Figure 2: cable cost vs length.
fn main() {
    dfly_bench::figures::fig2();
}
