//! `dfly` — a command-line front end for the dragonfly library.
//!
//! ```text
//! dfly info     -p 4 -a 8 -H 4 [-g N]          topology facts
//! dfly simulate -p 4 -a 8 -H 4 --routing ugal-lvch --traffic wc \
//!               --load 0.2 [--buffers 16] [--cycles 3000] [--seed 1]
//! dfly sweep    -p 4 -a 8 -H 4 --routing ugal-g --traffic ur \
//!               --loads 0.1,0.3,0.5,0.7,0.9
//! dfly cost     -n 16384                        Figure-19 style table
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use dfly_cost::{CostConfig, PowerModel};
use dfly_topo::Topology;
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  \
         dfly info     -p P -a A -H H [-g G]\n  \
         dfly simulate -p P -a A -H H [-g G] --routing R --traffic T --load L\n                \
         [--buffers B] [--cycles C] [--seed S]\n  \
         dfly sweep    -p P -a A -H H [-g G] --routing R --traffic T --loads L1,L2,..\n  \
         dfly cost     -n NODES\n\n\
         routings: min val ugal-l ugal-lvc ugal-lvch ugal-lcr ugal-g\n\
         traffic:  ur wc tornado perm"
    );
    ExitCode::from(2)
}

fn parse_flags(args: &[String]) -> Option<HashMap<String, String>> {
    let mut flags = HashMap::new();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let key = flag.strip_prefix("--").or_else(|| flag.strip_prefix('-'))?;
        let value = it.next()?;
        flags.insert(key.to_string(), value.clone());
    }
    Some(flags)
}

fn params_from(flags: &HashMap<String, String>) -> Result<DragonflyParams, String> {
    let get = |k: &str| -> Result<usize, String> {
        flags
            .get(k)
            .ok_or(format!("missing -{k}"))?
            .parse()
            .map_err(|e| format!("-{k}: {e}"))
    };
    let (p, a, h) = (get("p")?, get("a")?, get("H")?);
    match flags.get("g") {
        Some(g) => {
            DragonflyParams::with_groups(p, a, h, g.parse().map_err(|e| format!("-g: {e}"))?)
        }
        None => DragonflyParams::new(p, a, h),
    }
}

fn routing_from(flags: &HashMap<String, String>) -> Result<RoutingChoice, String> {
    match flags.get("routing").map(String::as_str) {
        Some("min") => Ok(RoutingChoice::Min),
        Some("val") => Ok(RoutingChoice::Valiant),
        Some("ugal-l") => Ok(RoutingChoice::UgalL),
        Some("ugal-lvc") => Ok(RoutingChoice::UgalLVc),
        Some("ugal-lvch") => Ok(RoutingChoice::UgalLVcH),
        Some("ugal-lcr") => Ok(RoutingChoice::UgalLCr),
        Some("ugal-g") => Ok(RoutingChoice::UgalG),
        Some(other) => Err(format!("unknown routing {other}")),
        None => Err("missing --routing".into()),
    }
}

fn traffic_from(flags: &HashMap<String, String>) -> Result<TrafficChoice, String> {
    match flags.get("traffic").map(String::as_str) {
        Some("ur") => Ok(TrafficChoice::Uniform),
        Some("wc") => Ok(TrafficChoice::WorstCase),
        Some("tornado") => Ok(TrafficChoice::GroupTornado),
        Some("perm") => Ok(TrafficChoice::RandomPermutation { seed: 42 }),
        Some(other) => Err(format!("unknown traffic {other}")),
        None => Err("missing --traffic".into()),
    }
}

fn cmd_info(flags: &HashMap<String, String>) -> Result<(), String> {
    let params = params_from(flags)?;
    let df = dragonfly::Dragonfly::new(params);
    println!(
        "dragonfly p={} a={} h={} g={}",
        params.terminals_per_router(),
        params.routers_per_group(),
        params.global_ports_per_router(),
        params.num_groups()
    );
    println!("  terminals          {}", params.num_terminals());
    println!("  routers            {}", params.num_routers());
    println!("  router radix       {}", params.router_radix());
    println!("  effective radix k' {}", params.effective_radix());
    println!(
        "  global channels    {}",
        params.num_groups()
            * (params.global_ports_per_group() - df.unused_global_ports_per_group())
            / 2
    );
    println!("  balanced (a=2p=2h) {}", params.is_balanced());
    println!("  diameter (hops)    {:?}", df.diameter());
    println!(
        "  avg hops           {:.2}",
        df.average_hop_count().unwrap_or(f64::NAN)
    );
    Ok(())
}

fn sim_config(
    flags: &HashMap<String, String>,
    load: f64,
) -> Result<dfly_netsim::SimConfig, String> {
    let mut cfg = dfly_netsim::SimConfig::paper_default(load);
    if let Some(c) = flags.get("cycles") {
        let c: u64 = c.parse().map_err(|e| format!("--cycles: {e}"))?;
        cfg.warmup = c / 2;
        cfg.measure = c;
        cfg.drain_cap = 10 * c;
    } else {
        cfg.warmup = 2_000;
        cfg.measure = 3_000;
        cfg.drain_cap = 30_000;
    }
    if let Some(b) = flags.get("buffers") {
        cfg.buffer_depth = b.parse().map_err(|e| format!("--buffers: {e}"))?;
    }
    if let Some(s) = flags.get("seed") {
        cfg.seed = s.parse().map_err(|e| format!("--seed: {e}"))?;
    }
    Ok(cfg)
}

fn print_stats(stats: &dfly_netsim::RunStats) {
    println!("  offered load       {:.3}", stats.offered_load);
    println!("  injected rate      {:.3}", stats.injected_rate);
    println!("  accepted rate      {:.3}", stats.accepted_rate);
    println!("  drained            {}", stats.drained);
    if let Some(avg) = stats.avg_latency() {
        println!("  latency avg        {avg:.1}");
        println!(
            "  latency p50/p95/p99  {:?} / {:?} / {:?}",
            stats.histogram.percentile(0.50),
            stats.histogram.percentile(0.95),
            stats.histogram.percentile(0.99)
        );
        println!(
            "  latency min/max    {} / {}",
            stats.latency.min, stats.latency.max
        );
    }
    if let Some(frac) = stats.minimal_fraction() {
        println!("  minimally routed   {:.1}%", frac * 100.0);
    }
}

fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let params = params_from(flags)?;
    let routing = routing_from(flags)?;
    let traffic = traffic_from(flags)?;
    let load: f64 = flags
        .get("load")
        .ok_or("missing --load")?
        .parse()
        .map_err(|e| format!("--load: {e}"))?;
    let sim = DragonflySim::new(params);
    let stats = sim.run(routing, traffic, sim_config(flags, load)?);
    println!(
        "{} on {} traffic, N={}:",
        routing.label(),
        traffic.label(),
        params.num_terminals()
    );
    print_stats(&stats);
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let params = params_from(flags)?;
    let routing = routing_from(flags)?;
    let traffic = traffic_from(flags)?;
    let loads: Vec<f64> = flags
        .get("loads")
        .ok_or("missing --loads")?
        .split(',')
        .map(|s| s.trim().parse().map_err(|e| format!("--loads: {e}")))
        .collect::<Result<_, _>>()?;
    let sim = DragonflySim::new(params);
    println!("| load | latency | accepted | minimal % |");
    println!("|---|---|---|---|");
    for load in loads {
        let stats = sim.run(routing, traffic, sim_config(flags, load)?);
        let latency = if stats.drained {
            stats
                .avg_latency()
                .map(|l| format!("{l:.1}"))
                .unwrap_or_else(|| "-".into())
        } else {
            "sat".into()
        };
        println!(
            "| {load:.2} | {latency} | {:.3} | {:.0} |",
            stats.accepted_rate,
            stats.minimal_fraction().unwrap_or(0.0) * 100.0
        );
    }
    Ok(())
}

fn cmd_cost(flags: &HashMap<String, String>) -> Result<(), String> {
    let n: usize = flags
        .get("n")
        .ok_or("missing -n")?
        .parse()
        .map_err(|e| format!("-n: {e}"))?;
    let cfg = CostConfig::default();
    let pm = PowerModel::default();
    println!("| topology | $/node | W/node | routers | optical cables |");
    println!("|---|---|---|---|---|");
    for cost in [
        cfg.dragonfly(n),
        cfg.flattened_butterfly(n),
        cfg.folded_clos(n),
        cfg.torus_3d(n),
    ] {
        let power = pm.of(&cost);
        println!(
            "| {} | {:.1} | {:.2} | {} | {} |",
            cost.topology,
            cost.per_node(),
            power.per_node_w(),
            cost.routers,
            cost.cables.optical
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        return usage();
    };
    let Some(flags) = parse_flags(rest) else {
        return usage();
    };
    let result = match cmd.as_str() {
        "info" => cmd_info(&flags),
        "simulate" => cmd_simulate(&flags),
        "sweep" => cmd_sweep(&flags),
        "cost" => cmd_cost(&flags),
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}
