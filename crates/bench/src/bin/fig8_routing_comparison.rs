//! Regenerates Figure 8: routing algorithm comparison (UR and WC).
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig8(&Windows::from_env());
}
