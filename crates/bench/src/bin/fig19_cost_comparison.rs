//! Regenerates Figure 19: cost per node vs network size.
fn main() {
    dfly_bench::figures::fig19();
}
