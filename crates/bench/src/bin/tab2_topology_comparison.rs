//! Regenerates Table 2 and the Figure 18 64K case study.
fn main() {
    dfly_bench::figures::tab2();
}
