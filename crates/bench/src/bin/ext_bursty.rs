//! Extension experiment: bursty (on/off) injection versus the paper's
//! Bernoulli process at equal average rate. Burstiness stresses the
//! adaptive decision — queues oscillate, so the UGAL estimate is stale
//! more often — and rewards the credit round-trip variant's faster
//! congestion sensing.

use dfly_bench::{fmt_latency, paper_network, Windows};
use dfly_netsim::InjectionKind;
use dragonfly::{RoutingChoice, TrafficChoice};

fn main() {
    let win = Windows::from_env();
    let sim = paper_network();
    println!("# Bursty vs Bernoulli injection (WC traffic, 1K nodes)");
    println!("| load | process | UGAL-L_VCH | UGAL-L_CR | UGAL-G |");
    println!("|---|---|---|---|---|");
    for &load in &win.thin(&[0.1, 0.2, 0.3]) {
        for (name, kind) in [
            ("bernoulli", InjectionKind::Bernoulli { rate: load }),
            (
                "on/off x16",
                InjectionKind::OnOff {
                    rate: load,
                    burst_len: 16.0,
                },
            ),
        ] {
            let mut row = format!("| {load:.1} | {name} |");
            for choice in [
                RoutingChoice::UgalLVcH,
                RoutingChoice::UgalLCr,
                RoutingChoice::UgalG,
            ] {
                let mut cfg = win.config(load);
                cfg.injection = kind;
                let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
                let cell = if stats.drained {
                    fmt_latency(stats.avg_latency())
                } else {
                    "sat".into()
                };
                row.push_str(&format!(" {cell} |"));
            }
            println!("{row}");
        }
    }
    println!(
        "\nBurstiness raises everyone's latency; the ordering\n\
         VCH > CR > G (and CR's closeness to G) survives it."
    );
}
