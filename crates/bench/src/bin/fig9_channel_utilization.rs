//! Regenerates Figure 9: global channel utilisation under UGAL-L/G.
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig9(&Windows::from_env());
}
