//! Regenerates Figure 11: minimal vs non-minimal packet latency.
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig11(&Windows::from_env());
}
