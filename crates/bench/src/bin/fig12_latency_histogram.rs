//! Regenerates Figure 12: packet latency histograms.
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig12(&Windows::from_env());
}
