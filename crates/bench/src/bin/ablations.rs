//! Ablations of the credit round-trip mechanism's design choices
//! (DESIGN.md): the td estimator (last sample vs EWMA), the CTQ
//! sampling ratio (the paper suggests tracking 1 of 4 credits
//! suffices), and buffer depth under UGAL-L_CR.

use dfly_bench::{paper_network, Windows};
use dfly_netsim::{CreditMode, TdEstimator};
use dragonfly::{RoutingChoice, TrafficChoice};

fn main() {
    let win = Windows::from_env();
    let sim = paper_network();
    let run = |mode: CreditMode, buffers: usize, load: f64| {
        let mut cfg = win.config(load).with_buffer_depth(buffers);
        cfg.credit_mode = mode;
        sim.run(RoutingChoice::UgalLCr, TrafficChoice::WorstCase, cfg)
    };

    println!("# Credit round-trip ablations (UGAL-L_CR, WC traffic at 0.2)");

    println!("\n## td estimator");
    println!("| estimator | avg latency | minimal-packet latency |");
    println!("|---|---|---|");
    for (name, estimator) in [
        ("last sample (paper)", TdEstimator::LastSample),
        ("EWMA 1/4", TdEstimator::Ewma { shift: 2 }),
        ("EWMA 1/16", TdEstimator::Ewma { shift: 4 }),
    ] {
        let stats = run(
            CreditMode::RoundTrip {
                sample: 1,
                estimator,
            },
            16,
            0.2,
        );
        println!(
            "| {name} | {} | {} |",
            dfly_bench::fmt_latency(stats.avg_latency()),
            dfly_bench::fmt_latency(stats.minimal_latency.mean()),
        );
    }

    println!("\n## CTQ sampling ratio (paper: 1-of-4 suffices)");
    println!("| tracked credits | avg latency | minimal-packet latency |");
    println!("|---|---|---|");
    for sample in [1u32, 2, 4, 8] {
        let stats = run(
            CreditMode::RoundTrip {
                sample,
                estimator: TdEstimator::LastSample,
            },
            16,
            0.2,
        );
        println!(
            "| 1 of {sample} | {} | {} |",
            dfly_bench::fmt_latency(stats.avg_latency()),
            dfly_bench::fmt_latency(stats.minimal_latency.mean()),
        );
    }

    println!("\n## buffer depth (CR should be ~independent; cf. Figure 16)");
    println!("| buffers | avg latency | minimal-packet latency |");
    println!("|---|---|---|");
    for buffers in [16usize, 64, 256] {
        let stats = run(CreditMode::round_trip(), buffers, 0.2);
        println!(
            "| {buffers} | {} | {} |",
            dfly_bench::fmt_latency(stats.avg_latency()),
            dfly_bench::fmt_latency(stats.minimal_latency.mean()),
        );
    }
}
