//! Regenerates Figure 14: latency vs load across buffer depths.
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig14(&Windows::from_env());
}
