//! Extension experiment (beyond the paper's cost-only §5 comparison):
//! simulate a flattened butterfly and a dragonfly of similar size and
//! router radix on the same engine, and compare latency and saturation
//! behaviourally.

use std::sync::Arc;

use dfly_bench::Windows;
use dfly_netsim::Simulation;
use dfly_topo::{FlattenedButterfly, Topology};
use dfly_traffic::UniformRandom;
use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn main() {
    let win = Windows::from_env();

    // Comparable machines from radix-7-ish parts:
    //  - dragonfly p=h=2, a=4: 72 terminals, radix 7;
    //  - 2-D flattened butterfly c=2, s=6: 72 terminals, radix 12.
    let df = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
    let fbn = Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 6, 2)));
    let fb_spec = fbn.build_spec();
    println!("# Dragonfly vs flattened butterfly, simulated head-to-head");
    println!(
        "dragonfly: N={}, radix {}; butterfly: N={}, radix {}",
        df.spec().num_terminals(),
        df.dragonfly().router_radix(),
        fb_spec.num_terminals(),
        fbn.topology().radix(),
    );

    println!("\n| load | DF MIN | DF UGAL-L_VCH | FB MIN | FB UGAL-L |");
    println!("|---|---|---|---|---|");
    let traffic = UniformRandom::new(72);
    for &load in &win.thin(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]) {
        let cfg = win.config(load);
        let df_min = df.run(RoutingChoice::Min, TrafficChoice::Uniform, cfg.clone());
        let df_ugal = df.run(RoutingChoice::UgalLVcH, TrafficChoice::Uniform, cfg.clone());
        let fb_lat = |routing: &ButterflyRouting| {
            let stats = Simulation::new(&fb_spec, routing, &traffic, cfg.clone())
                .unwrap()
                .run();
            if stats.drained {
                stats
                    .avg_latency()
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into())
            } else {
                "sat".into()
            }
        };
        let cell = |stats: &dfly_netsim::RunStats| {
            if stats.drained {
                stats
                    .avg_latency()
                    .map(|l| format!("{l:.1}"))
                    .unwrap_or_else(|| "-".into())
            } else {
                "sat".into()
            }
        };
        println!(
            "| {load:.1} | {} | {} | {} | {} |",
            cell(&df_min),
            cell(&df_ugal),
            fb_lat(&ButterflyRouting::minimal(fbn.clone())),
            fb_lat(&ButterflyRouting::ugal_local(fbn.clone())),
        );
    }
    println!(
        "\nBoth reach comparable uniform-random performance; the dragonfly \
         does it with {} network ports per router instead of {} — the whole \
         point of the virtual-router construction.",
        df.dragonfly().router_radix() - 2,
        fbn.topology().radix() - 2,
    );
}
