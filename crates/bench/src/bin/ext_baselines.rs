//! Extension experiment: all four of the paper's §5 topologies simulated
//! head-to-head on the same cycle-accurate engine — dragonfly, flattened
//! butterfly, folded Clos and 3-D torus of comparable size — under
//! uniform random traffic.
//!
//! The paper compares these topologies on cost only; simulating them
//! behaviourally shows the other side of the trade: the torus's hop
//! count inflates its latency, the Clos needs twice the hops of the
//! dragonfly, and the butterfly matches the dragonfly only by spending
//! twice the router ports.
//!
//! All four curves are described as [`TopoCurve`]s and fanned out as a
//! single flat batch of independent runs (see
//! [`sweep_topology_curves`]), rather than one sweep per topology.

use std::sync::Arc;

use dfly_bench::{sweep_topology_curves, TopoCurve, Windows};
use dfly_netsim::RunStats;
use dfly_topo::{FlattenedButterfly, FoldedClos, Topology, Torus};
use dfly_traffic::UniformRandom;
use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::clos_sim::{ClosNetwork, ClosRouting};
use dragonfly::torus_sim::{TorusNetwork, TorusRouting};
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn cell(stats: &RunStats) -> String {
    if stats.drained {
        stats
            .avg_latency()
            .map(|l| format!("{l:.1}"))
            .unwrap_or_else(|| "-".into())
    } else {
        "sat".into()
    }
}

fn main() {
    let win = Windows::from_env();

    // Four machines near 64-72 terminals.
    let df = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap()); // 72
    let fbn = Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 6, 2))); // 72
    let clos = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8))); // 64
    let torus = Arc::new(TorusNetwork::new(Torus::new(3, 4, 1))); // 64

    let fb_spec = Arc::new(fbn.build_spec());
    let clos_spec = Arc::new(clos.build_spec());
    let torus_spec = Arc::new(torus.build_spec());

    println!("# Four topologies on one engine (uniform random)");
    println!(
        "| network | terminals | routers | radix |\n|---|---|---|---|\n\
         | dragonfly | {} | {} | {} |\n\
         | flattened butterfly | {} | {} | {} |\n\
         | folded Clos | {} | {} | {} |\n\
         | 3-D torus | {} | {} | {} |",
        df.spec().num_terminals(),
        df.spec().num_routers(),
        df.dragonfly().router_radix(),
        fb_spec.num_terminals(),
        fb_spec.num_routers(),
        fbn.topology().radix(),
        clos_spec.num_terminals(),
        clos_spec.num_routers(),
        clos.topology().radix(),
        torus_spec.num_terminals(),
        torus_spec.num_routers(),
        torus.topology().radix(),
    );

    let loads = win.thin(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]);
    let base = win.config(0.1);
    // One flat batch: every (topology, load) pair is an independent run.
    let curves = [
        TopoCurve {
            label: "dragonfly UGAL".into(),
            ..TopoCurve::dragonfly(&df, RoutingChoice::UgalLVcH, TrafficChoice::Uniform)
        },
        TopoCurve::new(
            "butterfly UGAL",
            Arc::clone(&fb_spec),
            Arc::new(ButterflyRouting::ugal_local(Arc::clone(&fbn))),
            Arc::new(UniformRandom::new(fb_spec.num_terminals())),
        ),
        TopoCurve::new(
            "Clos up/down",
            Arc::clone(&clos_spec),
            Arc::new(ClosRouting::new(Arc::clone(&clos))),
            Arc::new(UniformRandom::new(clos_spec.num_terminals())),
        ),
        TopoCurve::new(
            "torus DOR",
            Arc::clone(&torus_spec),
            Arc::new(TorusRouting::new(Arc::clone(&torus))),
            Arc::new(UniformRandom::new(torus_spec.num_terminals())),
        ),
    ];
    let (series, _) = sweep_topology_curves(&curves, &loads, &base, false, false);

    print!("\n| load |");
    for (label, _) in &series {
        print!(" {label} |");
    }
    println!();
    println!("|---|{}", "---|".repeat(series.len()));
    for (i, &load) in loads.iter().enumerate() {
        print!("| {load:.1} |");
        for (_, points) in &series {
            print!(" {} |", cell(&points[i].stats));
        }
        println!();
    }
    println!(
        "\nHop counts at 0.1 load: dragonfly/butterfly ~2, Clos ~2x ranks, \
         torus ~k (the diameter penalty the paper's cost argument starts from)."
    );
}
