//! Extension experiment: all four of the paper's §5 topologies simulated
//! head-to-head on the same cycle-accurate engine — dragonfly, flattened
//! butterfly, folded Clos and 3-D torus of comparable size — under
//! uniform random traffic.
//!
//! The paper compares these topologies on cost only; simulating them
//! behaviourally shows the other side of the trade: the torus's hop
//! count inflates its latency, the Clos needs twice the hops of the
//! dragonfly, and the butterfly matches the dragonfly only by spending
//! twice the router ports.

use std::sync::Arc;

use dfly_bench::Windows;
use dfly_netsim::RunStats;
use dfly_topo::{FlattenedButterfly, FoldedClos, Topology, Torus};
use dfly_traffic::UniformRandom;
use dragonfly::butterfly::{ButterflyNetwork, ButterflyRouting};
use dragonfly::clos_sim::{ClosNetwork, ClosRouting};
use dragonfly::torus_sim::{TorusNetwork, TorusRouting};
use dragonfly::{DragonflyParams, DragonflySim, RoutingChoice, TrafficChoice};

fn cell(stats: &RunStats) -> String {
    if stats.drained {
        stats
            .avg_latency()
            .map(|l| format!("{l:.1}"))
            .unwrap_or_else(|| "-".into())
    } else {
        "sat".into()
    }
}

fn main() {
    let win = Windows::from_env();

    // Four machines near 64-72 terminals.
    let df = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap()); // 72
    let fbn = Arc::new(ButterflyNetwork::new(FlattenedButterfly::new(2, 6, 2))); // 72
    let clos = Arc::new(ClosNetwork::new(FoldedClos::new(3, 8))); // 64
    let torus = Arc::new(TorusNetwork::new(Torus::new(3, 4, 1))); // 64

    let fb_spec = fbn.build_spec();
    let clos_spec = clos.build_spec();
    let torus_spec = torus.build_spec();

    println!("# Four topologies on one engine (uniform random)");
    println!(
        "| network | terminals | routers | radix |\n|---|---|---|---|\n\
         | dragonfly | {} | {} | {} |\n\
         | flattened butterfly | {} | {} | {} |\n\
         | folded Clos | {} | {} | {} |\n\
         | 3-D torus | {} | {} | {} |",
        df.spec().num_terminals(),
        df.spec().num_routers(),
        df.dragonfly().router_radix(),
        fb_spec.num_terminals(),
        fb_spec.num_routers(),
        fbn.topology().radix(),
        clos_spec.num_terminals(),
        clos_spec.num_routers(),
        clos.topology().radix(),
        torus_spec.num_terminals(),
        torus_spec.num_routers(),
        torus.topology().radix(),
    );

    println!("\n| load | dragonfly UGAL | butterfly UGAL | Clos up/down | torus DOR |");
    println!("|---|---|---|---|---|");
    let loads = win.thin(&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9]);
    let base = win.config(0.1);
    // Each curve is one parallel load sweep on the shared engine.
    let df_curve = df.sweep(
        RoutingChoice::UgalLVcH,
        TrafficChoice::Uniform,
        &loads,
        &base,
    );
    let fb_routing = ButterflyRouting::ugal_local(fbn.clone());
    let fb_traffic = UniformRandom::new(fb_spec.num_terminals());
    let fb_curve = fbn.sweep(&fb_routing, &fb_traffic, &loads, &base);
    let clos_routing = ClosRouting::new(clos.clone());
    let clos_traffic = UniformRandom::new(clos_spec.num_terminals());
    let clos_curve = clos.sweep(&clos_routing, &clos_traffic, &loads, &base);
    let torus_routing = TorusRouting::new(torus.clone());
    let torus_traffic = UniformRandom::new(torus_spec.num_terminals());
    let torus_curve = torus.sweep(&torus_routing, &torus_traffic, &loads, &base);
    for (i, &load) in loads.iter().enumerate() {
        println!(
            "| {load:.1} | {} | {} | {} | {} |",
            cell(&df_curve[i].stats),
            cell(&fb_curve[i].stats),
            cell(&clos_curve[i].stats),
            cell(&torus_curve[i].stats),
        );
    }
    println!(
        "\nHop counts at 0.1 load: dragonfly/butterfly ~2, Clos ~2x ranks, \
         torus ~k (the diameter penalty the paper's cost argument starts from)."
    );
}
