//! Regenerates Table 1: cable technology characteristics.
fn main() {
    dfly_bench::figures::tab1();
}
