//! Extension figure: p50/p99 packet latency vs load per routing
//! scheme, from the log-bucketed latency histograms.
use dfly_bench::{figures, Windows};

fn main() {
    let win = Windows::from_env();
    println!("# Tail latency vs load (1K nodes)");
    figures::ext_tail_latency(&win);
}
