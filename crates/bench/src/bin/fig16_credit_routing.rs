//! Regenerates Figure 16: UGAL-L_CR vs UGAL-L_VCH vs UGAL-G.
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig16(&Windows::from_env());
}
