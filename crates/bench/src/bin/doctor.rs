//! Run-health doctor: replays the campaign journal and the BENCH
//! artifacts of a finished (or crashed) session and prints a verdict
//! table, so "did anything go wrong in that overnight sweep?" is one
//! command instead of an archaeology session.
//!
//! Checks, in order:
//!
//! * **campaign journal** — every entry decodes; work-complete
//!   (workload) cells actually completed; undrained sweep cells are
//!   reported as saturation (expected at the top of a latency-load
//!   curve, so informational); cells whose warmup failed the
//!   convergence gate are warned about.
//! * **BENCH document** (`BENCH_parallel_sweep.json`) — every
//!   `bit_identical` flag is true and the cached legs matched the
//!   fresh ones; the `health` section reports zero stalls and a
//!   transparent watchdog; the telemetry-disabled and watchdog-armed
//!   overheads are inside their CI budgets; the emitted wall-clock
//!   field manifest matches the compiled-in [`WALLCLOCK_FIELDS`] list.
//!
//! Usage: `doctor [CAMPAIGN_DIR] [BENCH_JSON]` — the directory
//! defaults to `DFLY_CAMPAIGN_DIR` or `target/campaign`, the document
//! to `BENCH_parallel_sweep.json`. Missing inputs are reported and
//! skipped, never invented.
//!
//! Exit code: 0 when no check FAILed (WARNs allowed), 2 otherwise.

use std::fmt;
use std::process::ExitCode;

use dfly_bench::{WALLCLOCK_EXACT_KEYS, WALLCLOCK_FIELDS};
use dragonfly::CampaignStore;

/// Severity of one verdict row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Ok,
    Info,
    Warn,
    Fail,
}

impl fmt::Display for Status {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad(match self {
            Status::Ok => "OK",
            Status::Info => "INFO",
            Status::Warn => "WARN",
            Status::Fail => "FAIL",
        })
    }
}

struct Report {
    rows: Vec<(String, Status, String)>,
}

impl Report {
    fn new() -> Self {
        Report { rows: Vec::new() }
    }

    fn row(&mut self, check: &str, status: Status, detail: impl Into<String>) {
        self.rows.push((check.to_string(), status, detail.into()));
    }

    fn count(&self, status: Status) -> usize {
        self.rows.iter().filter(|(_, s, _)| *s == status).count()
    }
}

/// First `"key": <number>` occurrence in `doc`.
fn find_num(doc: &str, key: &str) -> Option<f64> {
    let needle = format!("\"{key}\": ");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// First `"key": true|false` occurrence in `doc`.
fn find_bool(doc: &str, key: &str) -> Option<bool> {
    let needle = format!("\"{key}\": ");
    let start = doc.find(&needle)? + needle.len();
    let rest = &doc[start..];
    if rest.starts_with("true") {
        Some(true)
    } else if rest.starts_with("false") {
        Some(false)
    } else {
        None
    }
}

/// Every `"key": true|false` occurrence in `doc`, in document order.
fn find_all_bools(doc: &str, key: &str) -> Vec<bool> {
    let needle = format!("\"{key}\": ");
    let mut out = Vec::new();
    let mut at = 0;
    while let Some(i) = doc[at..].find(&needle) {
        let start = at + i + needle.len();
        let rest = &doc[start..];
        if rest.starts_with("true") {
            out.push(true);
        } else if rest.starts_with("false") {
            out.push(false);
        }
        at = start;
    }
    out
}

/// The string items of the first `"key": [...]` array in `doc`.
fn find_string_array(doc: &str, key: &str) -> Option<Vec<String>> {
    let needle = format!("\"{key}\": [");
    let start = doc.find(&needle)? + needle.len();
    let body = &doc[start..doc[start..].find(']')? + start];
    Some(
        body.split(',')
            .map(|s| s.trim().trim_matches('"').to_string())
            .filter(|s| !s.is_empty())
            .collect(),
    )
}

fn check_campaign(report: &mut Report, dir: &str) {
    if !std::path::Path::new(dir).join("journal.jsonl").is_file() {
        report.row(
            "campaign journal",
            Status::Info,
            format!("no journal at {dir} - nothing to replay"),
        );
        return;
    }
    let store = match CampaignStore::open(dir) {
        Ok(s) => s,
        Err(e) => {
            report.row(
                "campaign journal",
                Status::Fail,
                format!("store at {dir} unopenable: {e}"),
            );
            return;
        }
    };
    // Entries written by a superseded codec generation are permanent
    // cache misses by design (the canon embeds the format version), so
    // they don't count against decode coverage — only current-format
    // payloads that fail to decode indicate damage.
    let records = store.records();
    let stale = store.stale_len();
    let status = if records.len() + stale == store.len() {
        Status::Ok
    } else {
        Status::Warn
    };
    report.row(
        "campaign journal",
        status,
        format!(
            "{}/{} entries decoded, {} from superseded formats ({}, revision {})",
            records.len(),
            store.len(),
            stale,
            store.dir().display(),
            store.revision()
        ),
    );

    let wedged: Vec<&dragonfly::JournalRecord> = records
        .iter()
        .filter(|r| r.kind == "workload" && r.stats.completion.is_none())
        .collect();
    let workloads = records.iter().filter(|r| r.kind == "workload").count();
    if wedged.is_empty() {
        report.row(
            "workload completion",
            Status::Ok,
            format!("{workloads}/{workloads} work-complete cells finished"),
        );
    } else {
        report.row(
            "workload completion",
            Status::Fail,
            format!(
                "{}/{} work-complete cells hit their cycle cap",
                wedged.len(),
                workloads
            ),
        );
    }

    // Undrained open-loop cells that were configured to drain: expected
    // exactly at the saturated top of a latency-load curve, so they are
    // surfaced but not failed. Saturation probes (drain_cap: 0) are
    // exempt entirely.
    let saturated = records
        .iter()
        .filter(|r| r.kind != "workload" && r.drain_expected() && !r.stats.drained)
        .count();
    report.row(
        "saturated cells",
        Status::Info,
        format!("{saturated} undrained sweep cells (expected at saturation)"),
    );

    let unconverged = records.iter().filter(|r| !r.stats.converged).count();
    if unconverged == 0 {
        report.row(
            "warmup convergence",
            Status::Ok,
            format!("{}/{} cells converged", records.len(), records.len()),
        );
    } else {
        report.row(
            "warmup convergence",
            Status::Warn,
            format!(
                "{unconverged}/{} cells exceeded the warmup drift limit",
                records.len()
            ),
        );
    }
}

fn check_bench(report: &mut Report, path: &str) {
    let doc = match std::fs::read_to_string(path) {
        Ok(d) => d,
        Err(_) => {
            report.row(
                "BENCH document",
                Status::Info,
                format!("{path} not found - run perfstat to generate it"),
            );
            return;
        }
    };

    let flags = find_all_bools(&doc, "bit_identical");
    let cached = find_bool(&doc, "cached_matches_fresh");
    if !flags.is_empty() && flags.iter().all(|&b| b) && cached != Some(false) {
        report.row(
            "determinism",
            Status::Ok,
            format!(
                "{} bit_identical flags true, cached matches fresh",
                flags.len()
            ),
        );
    } else {
        report.row(
            "determinism",
            Status::Fail,
            format!("bit_identical flags {flags:?}, cached_matches_fresh {cached:?}"),
        );
    }

    match (
        find_num(&doc, "stalls"),
        find_bool(&doc, "watchdog_transparent"),
    ) {
        (Some(stalls), Some(transparent)) => {
            let clean = stalls == 0.0 && transparent;
            report.row(
                "stall watchdog",
                if clean { Status::Ok } else { Status::Fail },
                format!("{stalls:.0} stalls, transparent: {transparent}"),
            );
            match find_bool(&doc, "converged") {
                Some(true) => report.row("reference convergence", Status::Ok, "warmup converged"),
                Some(false) => report.row(
                    "reference convergence",
                    Status::Warn,
                    "reference run warmup exceeded the drift limit",
                ),
                None => report.row(
                    "reference convergence",
                    Status::Warn,
                    "no converged flag in the health section",
                ),
            }
        }
        _ => report.row(
            "stall watchdog",
            Status::Warn,
            "no health section - regenerate the document with current perfstat",
        ),
    }

    // Overhead budgets mirror the CI gates: a relative ceiling plus a
    // small absolute grace for short quick-mode runs.
    let overheads = [
        (
            "telemetry-disabled overhead",
            "disabled_secs",
            "reference_secs",
            1.03,
        ),
        ("watchdog overhead", "watchdog_secs", "disabled_secs", 1.05),
    ];
    for (check, num_key, den_key, limit) in overheads {
        match (find_num(&doc, num_key), find_num(&doc, den_key)) {
            (Some(num), Some(den)) => {
                let ok = num <= limit * den + 0.05;
                report.row(
                    check,
                    if ok { Status::Ok } else { Status::Fail },
                    format!(
                        "{num:.3}s vs {den:.3}s (limit {limit:.2}x + 50ms): {:.3}x",
                        num / den.max(1e-12)
                    ),
                );
            }
            _ => report.row(
                check,
                Status::Warn,
                format!("missing {num_key}/{den_key} in the document"),
            ),
        }
    }

    // Cross-document regression: when the cold-run document is kept
    // next to the warm one (CI renames it *.first.json), the warm
    // run's telemetry-disabled median must not have blown up against
    // it. Wall clock across whole runs is noisy, so this warns rather
    // than fails.
    let prev_path = path.replace(".json", ".first.json");
    if let Ok(prev) = std::fs::read_to_string(&prev_path) {
        if let (Some(cur), Some(before)) = (
            find_num(&doc, "disabled_secs"),
            find_num(&prev, "disabled_secs"),
        ) {
            let ok = cur <= 1.5 * before + 0.05;
            report.row(
                "overhead vs previous run",
                if ok { Status::Ok } else { Status::Warn },
                format!("disabled {cur:.3}s vs {before:.3}s in {prev_path}"),
            );
        }
    }

    // The wall-clock manifest the document advertises must match the
    // compiled-in list the warm-compare scrubs with.
    let fields = find_string_array(&doc, "wallclock_fields");
    let exact = find_string_array(&doc, "wallclock_exact");
    let expect_fields: Vec<String> = WALLCLOCK_FIELDS.iter().map(|s| s.to_string()).collect();
    let expect_exact: Vec<String> = WALLCLOCK_EXACT_KEYS.iter().map(|s| s.to_string()).collect();
    let matches = fields.as_deref() == Some(expect_fields.as_slice())
        && exact.as_deref() == Some(expect_exact.as_slice());
    report.row(
        "wall-clock manifest",
        if matches { Status::Ok } else { Status::Fail },
        if matches {
            format!(
                "{} substrings + {} exact keys match the compiled-in list",
                WALLCLOCK_FIELDS.len(),
                WALLCLOCK_EXACT_KEYS.len()
            )
        } else {
            format!("document manifest {fields:?}/{exact:?} diverged from the compiled-in list")
        },
    );
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let dir = args
        .next()
        .or_else(|| std::env::var("DFLY_CAMPAIGN_DIR").ok())
        .unwrap_or_else(|| "target/campaign".to_string());
    let bench = args
        .next()
        .unwrap_or_else(|| "BENCH_parallel_sweep.json".to_string());

    let mut report = Report::new();
    check_campaign(&mut report, &dir);
    check_bench(&mut report, &bench);

    println!("| check | status | detail |");
    println!("|---|---|---|");
    for (check, status, detail) in &report.rows {
        println!("| {check} | {status} | {detail} |");
    }
    let fails = report.count(Status::Fail);
    let warns = report.count(Status::Warn);
    println!(
        "doctor: verdict {} ({fails} FAIL, {warns} WARN)",
        if fails > 0 { "UNHEALTHY" } else { "CLEAN" }
    );
    if fails > 0 {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}
