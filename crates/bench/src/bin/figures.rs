//! Regenerates every table and figure of the paper in sequence.
use dfly_bench::{figures, Windows};

fn main() {
    let win = Windows::from_env();
    println!("# Dragonfly paper — regenerated tables and figures");
    println!("(windows: {win:?})");
    figures::fig1();
    figures::tab1();
    figures::fig2();
    figures::fig4();
    figures::fig8(&win);
    figures::fig9(&win);
    figures::fig10(&win);
    figures::fig11(&win);
    figures::fig12(&win);
    figures::fig14(&win);
    figures::fig16(&win);
    figures::ext_tail_latency(&win);
    figures::tab2();
    figures::fig19();
}
