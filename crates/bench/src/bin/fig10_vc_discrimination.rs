//! Regenerates Figure 10: the VC-discriminating UGAL variants.
use dfly_bench::Windows;
fn main() {
    dfly_bench::figures::fig10(&Windows::from_env());
}
