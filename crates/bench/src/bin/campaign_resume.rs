//! Campaign crash/resume harness for CI: runs a small fixed grid
//! through the campaign store, optionally killing itself mid-campaign
//! after a configured number of cache misses (leaving a torn partial
//! line at the journal tail), so a follow-up invocation can prove that
//! the rerun simulates only the missing cells and still matches a
//! fresh serial sweep byte for byte.
//!
//! Knobs:
//! * `DFLY_CAMPAIGN_DIR` — store directory (default
//!   `target/campaign_resume`);
//! * `DFLY_CAMPAIGN_KILL=K` — abort with exit code 3 after `K` cache
//!   misses have been journaled, appending a torn partial entry first.
//!
//! Without the kill knob it completes the grid, compares the cached
//! results against a fresh serial sweep, and prints a one-line JSON
//! summary: `{"total":…,"hits":…,"misses":…,"identical":…,"entries":…}`.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

use dragonfly::{CampaignStore, DragonflySim, RoutingChoice, RunGrid, TrafficChoice};

fn main() {
    let dir =
        std::env::var("DFLY_CAMPAIGN_DIR").unwrap_or_else(|_| "target/campaign_resume".to_string());
    let kill_after: Option<usize> = std::env::var("DFLY_CAMPAIGN_KILL")
        .ok()
        .and_then(|v| v.parse().ok());

    // A fixed 2x2x2 grid on the 72-terminal network: small enough for
    // CI, large enough that a mid-grid kill leaves real work behind.
    let sim = DragonflySim::new(dragonfly::DragonflyParams::new(2, 4, 2).expect("valid params"));
    let mut cfg = sim.config(0.1);
    cfg.seed = 1;
    cfg.warmup = 200;
    cfg.measure = 600;
    cfg.drain_cap = 20_000;
    let grid = RunGrid::cross(
        &[RoutingChoice::Min, RoutingChoice::UgalLVcH],
        &[TrafficChoice::Uniform, TrafficChoice::WorstCase],
        &[0.1, 0.3],
        &cfg,
    );

    let store = CampaignStore::open(&dir).expect("campaign store must open");
    eprintln!(
        "campaign_resume: {} runs, store at {} ({} entries)",
        grid.len(),
        store.dir().display(),
        store.len()
    );

    if let Some(kill_after) = kill_after {
        // Streaming kill leg: single-threaded so the journal grows in
        // plan order, abort once `kill_after` misses have streamed to
        // disk. The torn partial line appended below simulates a crash
        // mid-write; recovery must truncate it, not reject the journal.
        let misses = AtomicUsize::new(0);
        let journal = store.dir().join("journal.jsonl");
        grid.execute_cached_streaming_on(&sim, &store, 1, &|i, _stats, hit| {
            if hit {
                return;
            }
            let done = misses.fetch_add(1, Ordering::SeqCst) + 1;
            eprintln!("campaign_resume: miss {done} (plan {i}) journaled");
            if done >= kill_after {
                let mut f = std::fs::OpenOptions::new()
                    .append(true)
                    .open(&journal)
                    .expect("journal exists");
                f.write_all(b"{\"kind\":\"run\",\"key\":\"dead")
                    .expect("append torn tail");
                f.flush().expect("flush torn tail");
                eprintln!("campaign_resume: killed after {done} misses (torn tail appended)");
                std::process::exit(3);
            }
        })
        .expect("campaign kill leg must run");
        // Fewer cells than the kill threshold: fall through and report.
        eprintln!("campaign_resume: grid finished before reaching the kill threshold");
    }

    let (cached, report) = grid
        .execute_cached(&sim, &store)
        .expect("campaign grid must run");
    let fresh = grid.execute_serial(&sim);
    let identical = cached == fresh;
    assert!(identical, "cached grid diverged from fresh serial grid");
    println!(
        "{{\"total\":{},\"hits\":{},\"misses\":{},\"identical\":{},\"entries\":{}}}",
        grid.len(),
        report.hits,
        report.misses,
        identical,
        store.len()
    );
}
