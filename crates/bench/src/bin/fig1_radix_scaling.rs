//! Regenerates Figure 1: radix required for one global hop vs N.
fn main() {
    dfly_bench::figures::fig1();
}
