//! Figure/table regeneration harness for the dragonfly paper.
//!
//! Every table and figure of the paper's evaluation has a function here
//! that recomputes its rows and prints them as a markdown-ish table; the
//! `src/bin` binaries are thin wrappers (`fig8_routing_comparison`,
//! `fig19_cost_comparison`, …) and the `figures` binary runs the whole
//! set. Set `DFLY_QUICK=1` to use shorter simulation windows and coarser
//! sweeps while iterating.

use std::sync::Arc;

use dfly_netsim::{
    CreditMode, InjectionKind, NetworkSpec, RoutingAlgorithm, RunStats, SimConfig, Simulation,
};
use dfly_traffic::TrafficPattern;
use dragonfly::parallel::parallel_map;
use dragonfly::{
    CampaignStore, DragonflyParams, DragonflySim, RoutingChoice, RunGrid, RunPlan, TrafficChoice,
};

pub mod figures;
pub mod heatmap;

/// Key substrings marking a BENCH JSON field as wall-clock-derived:
/// timings, rates, memory high-water marks and overhead ratios. These
/// legitimately differ between a cold and a warm (fully cached)
/// perfstat run; everything else in the two BENCH documents must be
/// byte-identical. The list is emitted into the BENCH document's
/// `health.wallclock_fields` so the CI warm-compare scrubs with
/// exactly this set and the `doctor` binary cross-checks the emitted
/// manifest against it — there is no second copy to drift.
pub const WALLCLOCK_FIELDS: &[&str] = &["secs", "speedup", "per_sec", "rss", "wall", "over"];

/// Exact BENCH JSON keys that also differ between cold and warm runs:
/// the campaign hit/miss split flips when the store warms up.
pub const WALLCLOCK_EXACT_KEYS: &[&str] = &["hits", "misses"];

/// Simulation window sizes used by the figure harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Windows {
    /// Warm-up cycles.
    pub warmup: u64,
    /// Measurement cycles.
    pub measure: u64,
    /// Drain cap.
    pub drain_cap: u64,
    /// Load-sweep granularity divider (1 = full, 2 = every other point).
    pub stride: usize,
}

impl Windows {
    /// Full-fidelity windows (figure defaults).
    pub fn full() -> Self {
        Windows {
            warmup: 2_000,
            measure: 3_000,
            drain_cap: 15_000,
            stride: 1,
        }
    }

    /// Abbreviated windows for smoke testing.
    pub fn quick() -> Self {
        Windows {
            warmup: 500,
            measure: 1_000,
            drain_cap: 6_000,
            stride: 2,
        }
    }

    /// Picks [`Windows::quick`] when the `DFLY_QUICK` environment
    /// variable is set (to anything but `0`), else [`Windows::full`].
    pub fn from_env() -> Self {
        match std::env::var("DFLY_QUICK") {
            Ok(v) if v != "0" => Windows::quick(),
            _ => Windows::full(),
        }
    }

    /// A [`SimConfig`] at the given offered load.
    pub fn config(&self, load: f64) -> SimConfig {
        let mut cfg = SimConfig::paper_default(load);
        cfg.warmup = self.warmup;
        cfg.measure = self.measure;
        cfg.drain_cap = self.drain_cap;
        cfg
    }

    /// Thins a load list by the stride (always keeps the last point).
    pub fn thin(&self, loads: &[f64]) -> Vec<f64> {
        if self.stride <= 1 {
            return loads.to_vec();
        }
        let mut out: Vec<f64> = loads.iter().copied().step_by(self.stride).collect();
        if let Some(&last) = loads.last() {
            if out.last() != Some(&last) {
                out.push(last);
            }
        }
        out
    }
}

/// The paper's evaluation network: 1K nodes, `p = h = 4`, `a = 8`.
pub fn paper_network() -> DragonflySim {
    DragonflySim::new(paper_params())
}

/// Parameters of the paper's evaluation network.
pub fn paper_params() -> DragonflyParams {
    DragonflyParams::new(4, 8, 4).expect("paper parameters are valid")
}

/// The campaign store selected by `DFLY_CAMPAIGN_DIR`, if any: point
/// the variable at a directory to make the figure/bench sweeps
/// incremental (already-computed cells are answered from the on-disk
/// journal; see `dragonfly::campaign`). Unset, empty, `0`, or `off`
/// disables caching; an unopenable store falls back to uncached
/// execution with a note on stderr rather than failing the sweep.
pub fn campaign_store() -> Option<Arc<CampaignStore>> {
    let dir = std::env::var("DFLY_CAMPAIGN_DIR").ok()?;
    if dir.is_empty() || dir == "0" || dir == "off" {
        return None;
    }
    match CampaignStore::open(&dir) {
        Ok(store) => Some(Arc::new(store)),
        Err(e) => {
            eprintln!("campaign store at {dir} unavailable ({e}); running uncached");
            None
        }
    }
}

/// One measured sweep point.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Offered load.
    pub load: f64,
    /// Full run statistics.
    pub stats: RunStats,
}

impl SweepPoint {
    /// Average latency if the run drained.
    pub fn latency(&self) -> Option<f64> {
        if self.stats.drained {
            self.stats.avg_latency()
        } else {
            None
        }
    }
}

/// Sweeps ascending loads, stopping one point after saturation (the
/// paper's latency-load curves end at saturation).
pub fn sweep_to_saturation(
    sim: &DragonflySim,
    choice: RoutingChoice,
    traffic: TrafficChoice,
    loads: &[f64],
    win: &Windows,
    buffer_depth: usize,
) -> Vec<SweepPoint> {
    let mut out = Vec::new();
    for &load in loads {
        let mut cfg = win.config(load).with_buffer_depth(buffer_depth);
        cfg.seed = 1;
        let stats = sim.run(choice, traffic, cfg);
        let saturated = !stats.drained;
        out.push(SweepPoint { load, stats });
        if saturated {
            break;
        }
    }
    out
}

/// One latency-load curve to compute: a routing choice at a buffer
/// depth, labelled for the table header.
#[derive(Debug, Clone)]
pub struct CurveSpec {
    /// Column label.
    pub label: String,
    /// Routing algorithm.
    pub choice: RoutingChoice,
    /// Input buffer depth in flits.
    pub buffer_depth: usize,
}

impl CurveSpec {
    /// A curve for `choice` at `buffer_depth`, labelled with the
    /// routing's paper label.
    pub fn algo(choice: RoutingChoice, buffer_depth: usize) -> Self {
        CurveSpec {
            label: choice.label().to_string(),
            choice,
            buffer_depth,
        }
    }
}

/// A labelled latency-load curve.
pub type Curve = (String, Vec<SweepPoint>);
/// A labelled saturation throughput.
pub type Throughput = (String, f64);

/// Computes several latency-load curves — and, when `saturation` is
/// set, their saturation throughputs — as one flat batch of
/// independent runs fanned out across the worker pool.
///
/// Each curve is truncated one point past its first saturated load,
/// exactly like a serial [`sweep_to_saturation`] (the extra speculated
/// points are discarded), so the output is identical to the serial
/// path regardless of thread count. Thread budget comes from
/// `DFLY_THREADS` (see [`dragonfly::parallel::configured_threads`]).
pub fn sweep_curves(
    sim: &DragonflySim,
    curves: &[CurveSpec],
    traffic: TrafficChoice,
    loads: &[f64],
    win: &Windows,
    saturation: bool,
) -> (Vec<Curve>, Vec<Throughput>) {
    let mut grid = RunGrid::new();
    for curve in curves {
        for &load in loads {
            let mut cfg = win.config(load).with_buffer_depth(curve.buffer_depth);
            cfg.seed = 1;
            grid.push(RunPlan::new(curve.choice, traffic, cfg));
        }
        if saturation {
            let mut cfg = win.config(1.0).with_buffer_depth(curve.buffer_depth);
            cfg.drain_cap = 0;
            grid.push(RunPlan::new(curve.choice, traffic, cfg));
        }
    }
    let results = match campaign_store() {
        Some(store) => match grid.execute_cached(sim, &store) {
            Ok((stats, report)) => {
                eprintln!(
                    "campaign: {} hits, {} misses ({})",
                    report.hits,
                    report.misses,
                    store.dir().display()
                );
                stats
            }
            Err(e) => {
                eprintln!("campaign store failed ({e}); running uncached");
                grid.execute(sim)
            }
        },
        None => grid.execute(sim),
    };
    let mut results = results.into_iter();
    let mut series = Vec::with_capacity(curves.len());
    let mut caps = Vec::new();
    for curve in curves {
        let mut points = Vec::new();
        let mut saturated = false;
        for &load in loads {
            let stats = results.next().expect("one result per plan");
            if !saturated {
                saturated = !stats.drained;
                points.push(SweepPoint { load, stats });
            }
        }
        series.push((curve.label.clone(), points));
        if saturation {
            let stats = results.next().expect("one result per plan");
            caps.push((curve.label.clone(), stats.accepted_rate));
        }
    }
    (series, caps)
}

/// One latency-load curve on an arbitrary wired network: the spec plus
/// the routing algorithm and traffic pattern driving it.
///
/// This is the cross-topology counterpart of [`CurveSpec`] (which is
/// dragonfly-only): the flattened-butterfly, folded-Clos and torus
/// baselines describe their sweeps with it so all curves — dragonfly
/// included — fan out as one flat batch of independent runs.
pub struct TopoCurve {
    /// Column label.
    pub label: String,
    /// The wired network.
    pub spec: Arc<NetworkSpec>,
    /// Routing algorithm under test.
    pub routing: Arc<dyn RoutingAlgorithm + Send + Sync>,
    /// Offered traffic pattern.
    pub pattern: Arc<dyn TrafficPattern + Send + Sync>,
    /// Switch runs to round-trip credit accounting (required by
    /// routings that meter credit round-trip latency, e.g. UGAL-L_CR).
    pub round_trip_credits: bool,
}

impl std::fmt::Debug for TopoCurve {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TopoCurve")
            .field("label", &self.label)
            .field("routing", &self.routing.name())
            .field("pattern", &self.pattern.name())
            .field("round_trip_credits", &self.round_trip_credits)
            .finish_non_exhaustive()
    }
}

impl TopoCurve {
    /// A curve for `routing` under `pattern` on `spec`.
    pub fn new(
        label: impl Into<String>,
        spec: Arc<NetworkSpec>,
        routing: Arc<dyn RoutingAlgorithm + Send + Sync>,
        pattern: Arc<dyn TrafficPattern + Send + Sync>,
    ) -> Self {
        TopoCurve {
            label: label.into(),
            spec,
            routing,
            pattern,
            round_trip_credits: false,
        }
    }

    /// A dragonfly curve through the same generic path as the baseline
    /// topologies, labelled with the routing's paper label.
    pub fn dragonfly(sim: &DragonflySim, choice: RoutingChoice, traffic: TrafficChoice) -> Self {
        TopoCurve {
            label: choice.label().to_string(),
            spec: Arc::new(sim.spec().clone()),
            routing: Arc::from(choice.build(sim.shared_dragonfly())),
            pattern: Arc::from(traffic.build(sim.dragonfly().params())),
            round_trip_credits: choice.needs_round_trip_credits(),
        }
    }
}

/// Computes latency-load curves across heterogeneous topologies as one
/// flat batch of independent runs fanned out across the worker pool.
///
/// Every `(curve, load)` pair becomes one run of `base` with Bernoulli
/// injection at that load (plus, when `saturation` is set, one
/// drain-capped run at load 1.0 per curve for its saturation
/// throughput). When `truncate` is set each curve is cut one point past
/// its first saturated load, exactly like [`sweep_curves`]; otherwise
/// every requested load is reported (cross-topology tables print `sat`
/// cells instead of ending the row). Results are bit-identical to a
/// serial sweep regardless of thread count.
pub fn sweep_topology_curves(
    curves: &[TopoCurve],
    loads: &[f64],
    base: &SimConfig,
    truncate: bool,
    saturation: bool,
) -> (Vec<Curve>, Vec<Throughput>) {
    struct Job {
        curve: usize,
        load: f64,
        cap: bool,
    }
    let mut jobs = Vec::new();
    for curve in 0..curves.len() {
        for &load in loads {
            jobs.push(Job {
                curve,
                load,
                cap: false,
            });
        }
        if saturation {
            jobs.push(Job {
                curve,
                load: 1.0,
                cap: true,
            });
        }
    }
    let stats = parallel_map(&jobs, |job| {
        let tc = &curves[job.curve];
        let mut cfg = base.clone();
        cfg.injection = InjectionKind::Bernoulli { rate: job.load };
        if job.cap {
            // Don't wait for a futile drain at full load.
            cfg.drain_cap = 0;
        }
        if tc.round_trip_credits && cfg.credit_mode == CreditMode::Conventional {
            cfg.credit_mode = CreditMode::round_trip();
        }
        Simulation::new(&tc.spec, tc.routing.as_ref(), tc.pattern.as_ref(), cfg)
            .expect("topology sweep configuration must be valid")
            .finish()
    });
    let mut results = stats.into_iter();
    let mut series = Vec::with_capacity(curves.len());
    let mut caps = Vec::new();
    for curve in curves {
        let mut points = Vec::new();
        let mut saturated = false;
        for &load in loads {
            let stats = results.next().expect("one result per job");
            if !(truncate && saturated) {
                saturated = !stats.drained;
                points.push(SweepPoint { load, stats });
            }
        }
        series.push((curve.label.clone(), points));
        if saturation {
            let stats = results.next().expect("one result per job");
            caps.push((curve.label.clone(), stats.accepted_rate));
        }
    }
    (series, caps)
}

/// Measures accepted throughput at an offered load of 1.0 (saturation
/// throughput).
pub fn saturation_throughput(
    sim: &DragonflySim,
    choice: RoutingChoice,
    traffic: TrafficChoice,
    win: &Windows,
    buffer_depth: usize,
) -> f64 {
    let mut cfg = win.config(1.0).with_buffer_depth(buffer_depth);
    cfg.drain_cap = 0;
    sim.run(choice, traffic, cfg).accepted_rate
}

/// Formats an optional latency for a table cell.
pub fn fmt_latency(l: Option<f64>) -> String {
    match l {
        Some(v) => format!("{v:.1}"),
        None => "sat".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_thin_keeps_last() {
        let w = Windows {
            stride: 2,
            ..Windows::quick()
        };
        assert_eq!(w.thin(&[0.1, 0.2, 0.3, 0.4]), vec![0.1, 0.3, 0.4]);
        let w1 = Windows::full();
        assert_eq!(w1.thin(&[0.1, 0.2]), vec![0.1, 0.2]);
    }

    #[test]
    fn topology_curves_match_dragonfly_sweep() {
        let sim = DragonflySim::new(DragonflyParams::new(2, 4, 2).unwrap());
        let win = Windows {
            warmup: 100,
            measure: 200,
            drain_cap: 1_000,
            stride: 1,
        };
        let loads = [0.1, 0.3];
        let base = win.config(0.1);
        let curve = TopoCurve::dragonfly(&sim, RoutingChoice::UgalL, TrafficChoice::Uniform);
        let (curves, caps) = sweep_topology_curves(&[curve], &loads, &base, false, true);
        let by_grid = sim.sweep(RoutingChoice::UgalL, TrafficChoice::Uniform, &loads, &base);
        assert_eq!(curves.len(), 1);
        assert_eq!(curves[0].0, "UGAL-L");
        assert_eq!(curves[0].1.len(), loads.len());
        assert!(caps[0].1 > 0.0);
        for (p, lp) in curves[0].1.iter().zip(&by_grid) {
            assert_eq!(p.load, lp.load);
            assert_eq!(p.stats, lp.stats);
        }
    }

    #[test]
    fn sweep_stops_after_saturation() {
        let sim = paper_network();
        let win = Windows {
            warmup: 200,
            measure: 400,
            drain_cap: 1_500,
            stride: 1,
        };
        // MIN on WC saturates immediately above ~0.03.
        let points = sweep_to_saturation(
            &sim,
            RoutingChoice::Min,
            TrafficChoice::WorstCase,
            &[0.02, 0.2, 0.4, 0.6],
            &win,
            16,
        );
        assert!(points.len() <= 2, "got {} points", points.len());
        assert!(points.last().unwrap().latency().is_none());
    }
}
