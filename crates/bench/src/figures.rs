//! One generator per table/figure of the paper's evaluation.

use std::collections::HashMap;

use dfly_cost::{
    case_study_64k, dragonfly_cable_lengths_in_e, max_dragonfly_terminals,
    radix_for_single_global_hop, table2, CableCostModel, CostConfig, CABLE_TECHNOLOGIES,
};
use dragonfly::{DragonflyParams, RoutingChoice, TrafficChoice};

use crate::{fmt_latency, paper_network, sweep_curves, CurveSpec, SweepPoint, Windows};

/// The worst-case-pattern load axis of the paper's Figures 8(b)–16.
pub const WC_LOADS: [f64; 11] = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55];
/// The uniform-random load axis of Figures 8(a), 10(a), 16(c,d).
pub const UR_LOADS: [f64; 10] = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 0.95];

fn print_curves(title: &str, loads: &[f64], series: &[(String, Vec<SweepPoint>)]) {
    println!("\n### {title}");
    print!("| load |");
    for (name, _) in series {
        print!(" {name} |");
    }
    println!();
    print!("|---|");
    for _ in series {
        print!("---|");
    }
    println!();
    for &load in loads {
        let mut row = format!("| {load:.2} |");
        let mut any = false;
        for (_, points) in series {
            let cell = match points.iter().find(|p| (p.load - load).abs() < 1e-9) {
                Some(p) => {
                    any = true;
                    fmt_latency(p.latency())
                }
                None => "-".into(),
            };
            row.push_str(&format!(" {cell} |"));
        }
        if any {
            println!("{row}");
        }
    }
}

fn print_throughputs(series: &[(String, f64)]) {
    println!("\nSaturation throughput (accepted at offered 1.0):");
    for (name, cap) in series {
        println!("  {name:12} {cap:.3}");
    }
}

/// Per-curve routing decision quality, aggregated over the drained
/// loads of a sweep: what fraction of packets went minimal, and how
/// often the configured congestion estimator chose differently from the
/// plain queue-occupancy baseline.
fn print_decision_quality(series: &[(String, Vec<SweepPoint>)]) {
    println!("\nRouting decision quality (aggregated over drained loads):");
    println!("| routing | minimal take rate | estimator disagreement |");
    println!("|---|---|---|");
    for (name, points) in series {
        let mut t = dfly_netsim::RouteTelemetry::default();
        for p in points.iter().filter(|p| p.stats.drained) {
            t.minimal_takes += p.stats.routing.minimal_takes;
            t.non_minimal_takes += p.stats.routing.non_minimal_takes;
            t.adaptive_decisions += p.stats.routing.adaptive_decisions;
            t.estimator_disagreements += p.stats.routing.estimator_disagreements;
        }
        let rate = t
            .minimal_take_rate()
            .map_or("-".into(), |r| format!("{:.1}%", 100.0 * r));
        let dis = t
            .disagreement_rate()
            .map_or("-".into(), |r| format!("{:.1}%", 100.0 * r));
        println!("| {name} | {rate} | {dis} |");
    }
}

/// Figure 1: router radix required for a single global hop vs N.
pub fn fig1() {
    println!("\n## Figure 1 — radix for one global hop (fully connected, k ~ 2*sqrt(N))");
    println!("| N | required radix k |");
    println!("|---|---|");
    for exp in [2u32, 3, 4, 5, 6] {
        let n = 10usize.pow(exp);
        println!("| {n} | {} |", radix_for_single_global_hop(n));
    }
}

/// Table 1: cable technology characteristics.
pub fn tab1() {
    println!("\n## Table 1 — cable technologies");
    println!("| cable | reach (m) | rate (Gb/s) | power (W) | energy (pJ/bit) |");
    println!("|---|---|---|---|---|");
    for t in CABLE_TECHNOLOGIES {
        println!(
            "| {} | {} | {} | {} | {} |",
            t.name, t.max_length_m, t.data_rate_gbps, t.power_w, t.energy_pj_per_bit
        );
    }
}

/// Figure 2: cable cost ($/Gb/s) vs length for the two technologies.
pub fn fig2() {
    let m = CableCostModel::default();
    println!("\n## Figure 2 — cable cost vs length ($/Gb/s)");
    println!("| length (m) | electrical | optical | chosen |");
    println!("|---|---|---|---|");
    for len in (0..=10).map(|x| (x * 10) as f64) {
        println!(
            "| {len:.0} | {:.2} | {:.2} | {:.2} |",
            m.electrical(len),
            m.optical(len),
            m.cable(len.max(0.1))
        );
    }
    println!("Crossover: {:.1} m (paper: ~10 m)", m.crossover_m());
}

/// Figure 4: maximum balanced dragonfly size vs router radix.
pub fn fig4() {
    println!("\n## Figure 4 — dragonfly scalability (balanced a = 2p = 2h)");
    println!("| radix k | max N |");
    println!("|---|---|");
    for k in [4usize, 8, 16, 24, 32, 48, 64, 80] {
        match max_dragonfly_terminals(k) {
            Some(n) => println!("| {k} | {n} |"),
            None => println!("| {k} | - |"),
        }
    }
}

/// Figure 8: MIN / VAL / UGAL-L / UGAL-G on (a) uniform random and
/// (b) the worst-case pattern.
pub fn fig8(win: &Windows) {
    let sim = paper_network();
    let algos = [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalG,
        RoutingChoice::UgalL,
    ];
    let curves: Vec<CurveSpec> = algos.iter().map(|&a| CurveSpec::algo(a, 16)).collect();
    for (traffic, loads) in [
        (TrafficChoice::Uniform, &UR_LOADS[..]),
        (TrafficChoice::WorstCase, &WC_LOADS[..]),
    ] {
        let loads = win.thin(loads);
        let (series, caps) = sweep_curves(&sim, &curves, traffic, &loads, win, true);
        print_curves(
            &format!(
                "Figure 8({}) — latency vs load, {} traffic",
                if traffic == TrafficChoice::Uniform {
                    "a"
                } else {
                    "b"
                },
                traffic.label()
            ),
            &loads,
            &series,
        );
        print_throughputs(&caps);
        print_decision_quality(&series);
    }
}

/// Figure 9: per-global-channel utilisation under WC at load 0.2 for
/// UGAL-L and UGAL-G, ordered as in the paper: the minimal channel
/// first, then the non-minimal channels sharing its router, then the
/// rest of the group, averaged over all groups.
pub fn fig9(win: &Windows) {
    let sim = paper_network();
    let df = sim.dragonfly();
    let params = *df.params();
    let (g, h, ah) = (
        params.num_groups(),
        params.global_ports_per_router(),
        params.global_ports_per_group(),
    );
    println!("\n## Figure 9 — global channel utilisation, WC traffic at 0.2");
    println!("(rank 0 = minimal channel; ranks 1..{h} share its router; rest share the group)");
    let mut table: Vec<Vec<f64>> = Vec::new();
    let mut labels = Vec::new();
    for choice in [RoutingChoice::UgalL, RoutingChoice::UgalG] {
        let mut cfg = win.config(0.2);
        // Saturated UGAL-L runs are fine here: the utilisation during the
        // window is what the figure reports.
        cfg.drain_cap = 0;
        let stats = sim.run(choice, TrafficChoice::WorstCase, cfg);
        let util: HashMap<(usize, usize), f64> = stats
            .channel_loads
            .iter()
            .map(|c| ((c.router, c.port), c.utilization))
            .collect();
        let mut mean = vec![0.0f64; ah];
        for group in 0..g {
            let target = (group + 1) % g;
            let qmin = df.global_slot_at(group, target, 0);
            let min_router_base = (qmin / h) * h;
            // Rank ordering of this group's slots.
            let mut order = vec![qmin];
            order.extend((min_router_base..min_router_base + h).filter(|&q| q != qmin));
            order.extend((0..ah).filter(|&q| !(min_router_base..min_router_base + h).contains(&q)));
            for (rank, &q) in order.iter().enumerate() {
                let key = (df.slot_router(group, q), df.slot_port(q));
                mean[rank] += util.get(&key).copied().unwrap_or(0.0) / g as f64;
            }
        }
        table.push(mean);
        labels.push(choice.label());
    }
    println!("| channel rank | {} | {} |", labels[0], labels[1]);
    println!("|---|---|---|");
    for (rank, (l, g)) in table[0].iter().zip(&table[1]).enumerate() {
        println!("| {rank} | {l:.3} | {g:.3} |");
    }
}

/// Figure 10: the VC-discrimination variants vs UGAL-L and UGAL-G.
pub fn fig10(win: &Windows) {
    let sim = paper_network();
    let algos = [
        RoutingChoice::UgalL,
        RoutingChoice::UgalLVc,
        RoutingChoice::UgalLVcH,
        RoutingChoice::UgalG,
    ];
    let curves: Vec<CurveSpec> = algos.iter().map(|&a| CurveSpec::algo(a, 16)).collect();
    for (traffic, loads, tag) in [
        (TrafficChoice::Uniform, &UR_LOADS[..], "a"),
        (TrafficChoice::WorstCase, &WC_LOADS[..], "b"),
    ] {
        let loads = win.thin(loads);
        let (series, caps) = sweep_curves(&sim, &curves, traffic, &loads, win, true);
        print_curves(
            &format!(
                "Figure 10({tag}) — VC discrimination, {} traffic",
                traffic.label()
            ),
            &loads,
            &series,
        );
        print_throughputs(&caps);
    }
}

/// Figure 11: minimal vs non-minimal packet latency under UGAL-L (WC)
/// with 16- and 256-flit buffers.
pub fn fig11(win: &Windows) {
    let sim = paper_network();
    for (buffers, tag) in [(16usize, "a"), (256, "b")] {
        println!("\n### Figure 11({tag}) — UGAL-L WC, buffers {buffers}");
        println!("| load | minimal | non-minimal | average |");
        println!("|---|---|---|---|");
        for &load in &win.thin(&WC_LOADS) {
            let cfg = win.config(load).with_buffer_depth(buffers);
            let stats = sim.run(RoutingChoice::UgalL, TrafficChoice::WorstCase, cfg);
            if !stats.drained {
                println!("| {load:.2} | sat | sat | sat |");
                break;
            }
            println!(
                "| {load:.2} | {} | {} | {} |",
                fmt_latency(stats.minimal_latency.mean()),
                fmt_latency(stats.non_minimal_latency.mean()),
                fmt_latency(stats.avg_latency()),
            );
        }
    }
}

/// Figure 12: latency histograms at load 0.25 (UGAL-L, WC), buffers 16
/// and 256.
pub fn fig12(win: &Windows) {
    let sim = paper_network();
    for (buffers, tag, bucket) in [(16usize, "a", 4u64), (256, "b", 16)] {
        let cfg = win.config(0.25).with_buffer_depth(buffers);
        let stats = sim.run(RoutingChoice::UgalL, TrafficChoice::WorstCase, cfg);
        println!("\n### Figure 12({tag}) — latency histogram at 0.25, buffers {buffers}");
        println!(
            "avg latency = {} (paper: 19.2 for 16, 39.19 for 256)",
            fmt_latency(stats.avg_latency())
        );
        println!("| latency | fraction | minimal fraction |");
        println!("|---|---|---|");
        let all = stats.histogram.buckets();
        let min_only = stats.minimal_histogram.buckets();
        let total = stats.histogram.total() as f64;
        let mut printed = 0;
        for start in (0..all.len() as u64).step_by(bucket as usize) {
            let sum: u64 = (start..(start + bucket).min(all.len() as u64))
                .map(|i| all[i as usize])
                .sum();
            let msum: u64 = (start..(start + bucket).min(min_only.len() as u64))
                .map(|i| min_only[i as usize])
                .sum();
            if sum > 0 {
                println!(
                    "| {start}-{} | {:.4} | {:.4} |",
                    start + bucket - 1,
                    sum as f64 / total,
                    msum as f64 / total
                );
                printed += 1;
            }
            if printed > 40 {
                break;
            }
        }
    }
}

/// Figure 14: latency vs load as the buffer depth varies (UGAL-L, WC).
pub fn fig14(win: &Windows) {
    let sim = paper_network();
    let depths = [4usize, 8, 16, 32, 64];
    let loads = win.thin(&WC_LOADS);
    let curves: Vec<CurveSpec> = depths
        .iter()
        .map(|&d| CurveSpec {
            label: format!("buf {d}"),
            choice: RoutingChoice::UgalL,
            buffer_depth: d,
        })
        .collect();
    let (series, _) = sweep_curves(&sim, &curves, TrafficChoice::WorstCase, &loads, win, false);
    print_curves(
        "Figure 14 — UGAL-L WC latency vs load by buffer depth",
        &loads,
        &series,
    );
}

/// Figure 16: UGAL-L_CR vs UGAL-L_VCH vs UGAL-G on WC (a,b) and UR
/// (c,d) with 16- and 256-flit buffers.
pub fn fig16(win: &Windows) {
    let sim = paper_network();
    let algos = [
        RoutingChoice::UgalLVcH,
        RoutingChoice::UgalLCr,
        RoutingChoice::UgalG,
    ];
    for (traffic, loads, tags) in [
        (TrafficChoice::WorstCase, &WC_LOADS[..], ["a", "b"]),
        (TrafficChoice::Uniform, &UR_LOADS[..], ["c", "d"]),
    ] {
        for (buffers, tag) in [(16usize, tags[0]), (256, tags[1])] {
            let loads = win.thin(loads);
            let curves: Vec<CurveSpec> =
                algos.iter().map(|&a| CurveSpec::algo(a, buffers)).collect();
            let (series, _) = sweep_curves(&sim, &curves, traffic, &loads, win, false);
            print_curves(
                &format!(
                    "Figure 16({tag}) — credit round trip, {} traffic, buffers {buffers}",
                    traffic.label()
                ),
                &loads,
                &series,
            );
            print_decision_quality(&series);
        }
    }
}

/// Extension figure: p50/p99 packet latency vs load per routing
/// scheme, read from the log-bucketed latency histogram every run
/// records. The paper's mean-latency curves (Figure 8) hide tail
/// inflation — a scheme can hold its mean while its p99 degrades well
/// before saturation — so this table reports both percentiles side by
/// side for each routing family.
pub fn ext_tail_latency(win: &Windows) {
    let sim = paper_network();
    let algos = [
        RoutingChoice::Min,
        RoutingChoice::Valiant,
        RoutingChoice::UgalL,
        RoutingChoice::UgalG,
    ];
    let curves: Vec<CurveSpec> = algos.iter().map(|&a| CurveSpec::algo(a, 16)).collect();
    for (traffic, loads) in [
        (TrafficChoice::Uniform, &UR_LOADS[..]),
        (TrafficChoice::WorstCase, &WC_LOADS[..]),
    ] {
        let loads = win.thin(loads);
        let (series, _) = sweep_curves(&sim, &curves, traffic, &loads, win, false);
        println!(
            "\n### Tail latency — p50/p99 vs load, {} traffic",
            traffic.label()
        );
        print!("| load |");
        for (name, _) in &series {
            print!(" {name} p50/p99 |");
        }
        println!();
        print!("|---|");
        for _ in &series {
            print!("---|");
        }
        println!();
        for &load in &loads {
            let mut row = format!("| {load:.2} |");
            let mut any = false;
            for (_, points) in &series {
                let cell = match points.iter().find(|p| (p.load - load).abs() < 1e-9) {
                    Some(p) if p.stats.drained => {
                        any = true;
                        match (p.stats.p50_latency(), p.stats.p99_latency()) {
                            (Some(p50), Some(p99)) => format!("{p50}/{p99}"),
                            _ => "-".into(),
                        }
                    }
                    Some(_) => {
                        any = true;
                        "sat".into()
                    }
                    None => "-".into(),
                };
                row.push_str(&format!(" {cell} |"));
            }
            if any {
                println!("{row}");
            }
        }
    }
}

/// Table 2 and Figure 18: structural comparison against the flattened
/// butterfly.
pub fn tab2() {
    println!("\n## Table 2 — dragonfly vs flattened butterfly");
    println!("| topology | min diameter | non-min diameter | avg cable | max cable |");
    println!("|---|---|---|---|---|");
    for row in table2() {
        println!(
            "| {} | {}hl + {}hg | {}hl + {}hg | {:.2}E | {:.0}E |",
            row.topology,
            row.minimal_diameter.local,
            row.minimal_diameter.global,
            row.non_minimal_diameter.local,
            row.non_minimal_diameter.global,
            row.avg_cable_length_e,
            row.max_cable_length_e
        );
    }
    let params = DragonflyParams::with_groups(16, 32, 8, 32).expect("valid");
    let (avg_e, max_e) = dragonfly_cable_lengths_in_e(params, 128);
    println!(
        "Measured dragonfly global cables on a square floor: avg {avg_e:.2}E, max {max_e:.2}E"
    );

    let cs = case_study_64k();
    println!("\n## Figure 18 — 64K-node case study");
    println!("| metric | flattened butterfly | dragonfly |");
    println!("|---|---|---|");
    println!("| terminals | {} | {} |", cs.terminals.0, cs.terminals.1);
    println!("| router radix | {} | {} |", cs.radix.0, cs.radix.1);
    println!(
        "| global cables | {} | {} |",
        cs.global_cables.0, cs.global_cables.1
    );
    println!(
        "| global port fraction | {:.2} | {:.2} |",
        cs.global_port_fraction.0, cs.global_port_fraction.1
    );
}

/// Figure 19: cost per node vs network size for the four topologies.
pub fn fig19() {
    let cfg = CostConfig::default();
    println!("\n## Figure 19 — network cost per node vs size");
    println!("| N | dragonfly | flattened butterfly | folded Clos | 3-D torus | DF vs FB | DF vs Clos | DF vs torus |");
    println!("|---|---|---|---|---|---|---|---|");
    for n in [1024usize, 2048, 4096, 8192, 12288, 16384, 20480, 65536] {
        let df = cfg.dragonfly(n);
        let fb = cfg.flattened_butterfly(n);
        let clos = cfg.folded_clos(n);
        let torus = cfg.torus_3d(n);
        let save = |other: f64| format!("{:+.0}%", (1.0 - df.per_node() / other) * 100.0);
        println!(
            "| {n} | {:.1} | {:.1} | {:.1} | {:.1} | {} | {} | {} |",
            df.per_node(),
            fb.per_node(),
            clos.per_node(),
            torus.per_node(),
            save(fb.per_node()),
            save(clos.per_node()),
            save(torus.per_node()),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_figures_print() {
        // The analytic generators must not panic.
        fig1();
        tab1();
        fig2();
        fig4();
        tab2();
        fig19();
    }
}
